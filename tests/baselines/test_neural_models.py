"""Tests for layers, losses, optimisers and the Rank_LSTM / RSR models."""

import numpy as np
import pytest

from repro.baselines.neural import (
    Adam,
    Dense,
    LSTM,
    RankLSTM,
    SGD,
    Sequential,
    Tensor,
    TrainingConfig,
    combined_ranking_loss,
    mse_loss,
    pairwise_ranking_loss,
    prepare_sequences,
    train_rank_lstm,
    train_rsr,
)
from repro.baselines.neural.rank_lstm import grid_search_rank_lstm, predict_panel
from repro.baselines.neural.rsr import RSRModel
from repro.errors import BaselineError


class TestLayers:
    def test_dense_shapes_and_parameters(self, rng):
        layer = Dense(4, 3, seed=0)
        output = layer(Tensor(rng.normal(size=(7, 4))))
        assert output.shape == (7, 3)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_dense_activations(self, rng):
        inputs = Tensor(rng.normal(size=(5, 4)))
        assert (Dense(4, 2, activation="relu", seed=0)(inputs).data >= 0).all()
        assert np.abs(Dense(4, 2, activation="tanh", seed=0)(inputs).data).max() <= 1.0
        with pytest.raises(BaselineError):
            Dense(4, 2, activation="swish", seed=0)(inputs)

    def test_dense_invalid_sizes(self):
        with pytest.raises(BaselineError):
            Dense(0, 3)

    def test_lstm_output_shape(self, rng):
        lstm = LSTM(input_size=4, hidden_size=8, seed=0)
        output = lstm(Tensor(rng.normal(size=(6, 5, 4))))
        assert output.shape == (6, 8)

    def test_lstm_sequence_output(self, rng):
        lstm = LSTM(input_size=3, hidden_size=4, seed=0)
        outputs = lstm(Tensor(rng.normal(size=(2, 5, 3))), return_sequence=True)
        assert len(outputs) == 5
        assert outputs[0].shape == (2, 4)

    def test_lstm_rejects_non_sequence_input(self, rng):
        with pytest.raises(BaselineError):
            LSTM(3, 4)(Tensor(rng.normal(size=(5, 3))))

    def test_lstm_is_trainable(self, rng):
        lstm = LSTM(input_size=3, hidden_size=4, seed=0)
        inputs = Tensor(rng.normal(size=(2, 5, 3)))
        lstm(inputs).sum().backward()
        assert lstm.weight.grad is not None
        assert np.abs(lstm.weight.grad).sum() > 0

    def test_sequential(self, rng):
        model = Sequential([Dense(4, 8, activation="relu", seed=0), Dense(8, 1, seed=1)])
        output = model(Tensor(rng.normal(size=(6, 4))))
        assert output.shape == (6, 1)
        assert len(model.parameters()) == 4
        with pytest.raises(BaselineError):
            Sequential([])


class TestLosses:
    def test_mse_zero_for_identical(self, rng):
        values = rng.normal(size=10)
        assert mse_loss(Tensor(values), values).item() == pytest.approx(0.0)

    def test_mse_shape_mismatch(self, rng):
        with pytest.raises(BaselineError):
            mse_loss(Tensor(rng.normal(size=5)), rng.normal(size=6))

    def test_ranking_loss_zero_for_correct_order(self):
        predictions = Tensor(np.array([3.0, 2.0, 1.0]))
        targets = np.array([0.3, 0.2, 0.1])
        assert pairwise_ranking_loss(predictions, targets).item() == pytest.approx(0.0)

    def test_ranking_loss_positive_for_inverted_order(self):
        predictions = Tensor(np.array([1.0, 2.0, 3.0]))
        targets = np.array([0.3, 0.2, 0.1])
        assert pairwise_ranking_loss(predictions, targets).item() > 0.0

    def test_ranking_loss_needs_vector(self, rng):
        with pytest.raises(BaselineError):
            pairwise_ranking_loss(Tensor(rng.normal(size=(3, 2))), rng.normal(size=(3, 2)))
        with pytest.raises(BaselineError):
            pairwise_ranking_loss(Tensor(np.array([1.0])), np.array([1.0]))

    def test_combined_loss_alpha(self, rng):
        predictions = Tensor(rng.normal(size=6), requires_grad=True)
        targets = rng.normal(size=6)
        base = combined_ranking_loss(predictions, targets, alpha=0.0).item()
        heavier = combined_ranking_loss(predictions, targets, alpha=5.0).item()
        assert heavier >= base
        with pytest.raises(BaselineError):
            combined_ranking_loss(predictions, targets, alpha=-1.0)


class TestOptimizers:
    def test_sgd_minimises_quadratic(self):
        parameter = Tensor(np.array([5.0]), requires_grad=True)
        optimizer = SGD([parameter], learning_rate=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            loss = (parameter * parameter).sum()
            loss.backward()
            optimizer.step()
        assert abs(parameter.data[0]) < 1e-3

    def test_adam_minimises_quadratic(self):
        parameter = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        optimizer = Adam([parameter], learning_rate=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            ((parameter - 1.0) ** 2).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, 1.0, atol=1e-2)

    def test_invalid_learning_rate_and_params(self):
        with pytest.raises(BaselineError):
            SGD([Tensor([1.0], requires_grad=True)], learning_rate=0.0)
        with pytest.raises(BaselineError):
            Adam([], learning_rate=0.1)
        with pytest.raises(BaselineError):
            SGD([Tensor([1.0], requires_grad=True)], momentum=1.5)


class TestSequencePreparation:
    def test_shapes(self, small_taskset):
        data = prepare_sequences(small_taskset, "valid", sequence_length=8)
        assert data.inputs.shape == (small_taskset.split.valid,
                                     small_taskset.num_tasks, 8, 4)
        assert data.labels.shape == (small_taskset.split.valid, small_taskset.num_tasks)

    def test_sequence_length_capped_at_window(self, small_taskset):
        data = prepare_sequences(small_taskset, "train", sequence_length=32)
        assert data.inputs.shape[2] == small_taskset.window

    def test_invalid_length(self, small_taskset):
        with pytest.raises(BaselineError):
            prepare_sequences(small_taskset, "train", sequence_length=0)


class TestRankLSTM:
    def test_forward_shape(self, rng):
        model = RankLSTM(input_size=4, hidden_size=8, seed=0)
        predictions = model(Tensor(rng.normal(size=(10, 6, 4))))
        assert predictions.shape == (10,)

    def test_training_reduces_loss(self, small_taskset):
        config = TrainingConfig(sequence_length=4, hidden_size=8, epochs=3,
                                loss_alpha=0.0, batch_days=20, seed=0)
        _, outcome = train_rank_lstm(small_taskset, config)
        assert outcome.loss_history[-1] <= outcome.loss_history[0] * 1.5
        assert set(outcome.predictions) == {"train", "valid", "test"}
        assert np.isfinite(outcome.valid_ic)

    def test_predict_panel_shape(self, small_taskset):
        config = TrainingConfig(sequence_length=4, hidden_size=8, epochs=1,
                                batch_days=5, seed=0)
        model, _ = train_rank_lstm(small_taskset, config)
        data = prepare_sequences(small_taskset, "test", 4)
        panel = predict_panel(model, data)
        assert panel.shape == (small_taskset.split.test, small_taskset.num_tasks)

    def test_grid_search_selects_best_on_valid(self, small_taskset):
        result = grid_search_rank_lstm(
            small_taskset,
            sequence_lengths=(4,),
            hidden_sizes=(8,),
            loss_alphas=(0.1, 1.0),
            epochs=1,
            seed=0,
        )
        assert result.num_trials == 2
        assert result.best_outcome.valid_ic == max(t.valid_ic for t in result.trials)

    def test_grid_search_empty_grid_rejected(self, small_taskset):
        with pytest.raises(BaselineError):
            grid_search_rank_lstm(small_taskset, sequence_lengths=(), hidden_sizes=(8,))

    def test_invalid_training_config(self):
        with pytest.raises(BaselineError):
            TrainingConfig(epochs=0)
        with pytest.raises(BaselineError):
            TrainingConfig(hidden_size=0)


class TestRSR:
    def test_rsr_model_forward(self, small_taskset, rng):
        adjacency = small_taskset.taxonomy.adjacency("industry")
        model = RSRModel(hidden_size=8, adjacency=adjacency, seed=0)
        embeddings = Tensor(rng.normal(size=(small_taskset.num_tasks, 8)))
        predictions = model(embeddings)
        assert predictions.shape == (small_taskset.num_tasks,)

    def test_rsr_rejects_bad_adjacency(self):
        with pytest.raises(BaselineError):
            RSRModel(hidden_size=4, adjacency=np.zeros((3, 4)))

    def test_rsr_rejects_bad_embeddings(self, small_taskset, rng):
        adjacency = small_taskset.taxonomy.adjacency("sector")
        model = RSRModel(hidden_size=4, adjacency=adjacency, seed=0)
        with pytest.raises(BaselineError):
            model(Tensor(rng.normal(size=(2, 3, 4))))

    def test_rsr_training_pipeline(self, small_taskset):
        config = TrainingConfig(sequence_length=4, hidden_size=8, epochs=1,
                                batch_days=10, seed=0)
        pretrained, _ = train_rank_lstm(small_taskset, config)
        model, outcome = train_rsr(small_taskset, pretrained, config)
        assert isinstance(model, RSRModel)
        assert outcome.predictions["test"].shape == (
            small_taskset.split.test, small_taskset.num_tasks
        )
        assert np.isfinite(outcome.test_ic)
