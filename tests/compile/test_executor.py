"""Bitwise-parity tests for the compiled executor.

The contract under test is the hard one the search relies on: for every
program, ``AlphaEvaluator(compiled=True)`` produces predictions and fitness
reports that are *bit-for-bit* identical to the reference interpreter loop
(``compiled=False``) — including the fused batched inference path and the
per-day fallback.
"""

import numpy as np
import pytest

from repro.compile import CompiledAlpha, compile_program
from repro.core import (
    AlphaEvaluator,
    AlphaProgram,
    INPUT_MATRIX,
    LABEL,
    Mutator,
    Operand,
    Operation,
    PREDICTION,
    get_initialization,
)

S2, S3, S4 = (Operand.scalar(i) for i in (2, 3, 4))


def make_evaluator(taskset, compiled, **kwargs):
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("max_train_steps", 40)
    return AlphaEvaluator(taskset, compiled=compiled, **kwargs)


def assert_bitwise_equal(left: dict, right: dict):
    assert set(left) == set(right)
    for split in left:
        assert left[split].dtype == right[split].dtype
        assert left[split].tobytes() == right[split].tobytes(), split


def assert_reports_equal(left, right):
    assert left.is_valid == right.is_valid
    assert left.reason == right.reason
    same = (left.fitness == right.fitness) or (
        np.isnan(left.fitness) and np.isnan(right.fitness)
    )
    assert same
    assert np.array_equal(left.daily_ic_valid, right.daily_ic_valid)


class TestParity:
    def test_initializations_bitwise_identical(self, small_taskset, dims):
        for code in ("D", "NOOP", "R", "NN"):
            program = get_initialization(code, dims, seed=3)
            interpreted = make_evaluator(small_taskset, False).run(
                program, splits=("train", "valid", "test")
            )
            compiled = make_evaluator(small_taskset, True).run(
                program, splits=("train", "valid", "test")
            )
            assert_bitwise_equal(interpreted, compiled)

    def test_mutant_fuzz_bitwise_identical(self, small_taskset, dims):
        """Sixty mutated programs, covering fused and per-day inference."""
        mutator = Mutator(dims, seed=11)
        interpreter = make_evaluator(small_taskset, False)
        compiled_evaluator = make_evaluator(small_taskset, True)
        bases = [get_initialization(code, dims, seed=5) for code in ("D", "NN", "R")]
        program = bases[0]
        fused = not_fused = 0
        for step in range(60):
            program = mutator.mutate(bases[step % 3] if step % 7 == 0 else program)
            if compile_program(program).fused_inference:
                fused += 1
            else:
                not_fused += 1
            assert_bitwise_equal(
                interpreter.run(program), compiled_evaluator.run(program)
            )
        # the fuzz must exercise both inference paths to mean anything
        assert fused > 0 and not_fused > 0

    def test_reports_identical(self, small_taskset, dims):
        mutator = Mutator(dims, seed=23)
        interpreter = make_evaluator(small_taskset, False)
        compiled_evaluator = make_evaluator(small_taskset, True)
        program = get_initialization("NN", dims, seed=1)
        for _ in range(10):
            program = mutator.mutate(program)
            assert_reports_equal(
                interpreter.evaluate(program).report,
                compiled_evaluator.evaluate(program).report,
            )

    def test_use_update_ablation_identical(self, small_taskset, dims):
        program = get_initialization("NN", dims, seed=2)
        interpreted = make_evaluator(small_taskset, False, use_update=False).run(program)
        compiled = make_evaluator(small_taskset, True, use_update=False).run(program)
        assert_bitwise_equal(interpreted, compiled)

    def test_same_seed_required_for_parity(self, small_taskset, dims):
        """Stochastic initialisers derive from the evaluator seed, so parity
        holds per-seed (and differs across seeds)."""
        program = get_initialization("NN", dims, seed=2)
        a = make_evaluator(small_taskset, True, seed=1).run(program)
        b = make_evaluator(small_taskset, True, seed=2).run(program)
        assert not np.array_equal(a["valid"], b["valid"])


class TestFusedPath:
    def label_reader(self):
        """Predicts yesterday's label: forces the per-day inference loop."""
        return AlphaProgram(
            setup=[],
            predict=[
                Operation.make("get_scalar", (INPUT_MATRIX,), S2,
                               {"row": 0, "col": 0}),
                Operation.make("s_mul", (S2, LABEL), S3),
                Operation.make("s_add", (S2, S3), PREDICTION),
            ],
            update=[],
        )

    def accumulator(self):
        """Predict() accumulates into its own carried state across days."""
        return AlphaProgram(
            setup=[],
            predict=[
                Operation.make("get_scalar", (INPUT_MATRIX,), S2,
                               {"row": 0, "col": 0}),
                Operation.make("s_add", (S3, S2), S3),
                Operation.make("s_abs", (S3,), PREDICTION),
            ],
            update=[],
        )

    def test_label_reader_falls_back_and_matches(self, small_taskset):
        program = self.label_reader()
        assert not compile_program(program).fused_inference
        assert_bitwise_equal(
            make_evaluator(small_taskset, False).run(program),
            make_evaluator(small_taskset, True).run(program),
        )

    def test_accumulator_falls_back_and_matches(self, small_taskset):
        program = self.accumulator()
        assert not compile_program(program).fused_inference
        assert_bitwise_equal(
            make_evaluator(small_taskset, False).run(program),
            make_evaluator(small_taskset, True).run(program),
        )

    def test_fused_equals_per_day_execution(self, small_taskset, dims):
        """The fused batch reproduces the day loop on the same executor."""
        from repro.core import neural_network_alpha
        program = neural_network_alpha(dims)
        compiled = compile_program(program)
        assert compiled.fused_inference

        base = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        ctx = base.make_context()
        executor = CompiledAlpha(compiled, ctx)
        executor.run_setup()
        features = small_taskset.split_features("valid")
        fused = executor.run_inference_batch(features)

        executor2 = CompiledAlpha(compiled, base.make_context())
        executor2.run_setup()
        looped = np.zeros_like(fused)
        for day in range(features.shape[0]):
            executor2.set_input(features[day])
            executor2.run_predict()
            looped[day] = executor2.prediction
        assert fused.tobytes() == looped.tobytes()

    def test_fused_rejected_when_ineligible(self, small_taskset):
        program = self.label_reader()
        base = AlphaEvaluator(small_taskset, seed=0)
        executor = CompiledAlpha(compile_program(program), base.make_context())
        with pytest.raises(ValueError):
            executor.run_inference_batch(small_taskset.split_features("valid"))


class TestStaticHoisting:
    def test_constant_chain_runs_once_but_matches(self, small_taskset):
        """A pure-constant chain in Predict() is hoisted to the prologue."""
        program = AlphaProgram(
            setup=[],
            predict=[
                Operation.make("s_const", (), S2, {"constant": 0.5}),
                Operation.make("s_sin", (S2,), S3),
                Operation.make("get_scalar", (INPUT_MATRIX,), S4,
                               {"row": 1, "col": 1}),
                Operation.make("s_mul", (S3, S4), PREDICTION),
            ],
            update=[],
        )
        compiled = compile_program(program)
        base = AlphaEvaluator(small_taskset, seed=0)
        executor = CompiledAlpha(compiled, base.make_context())
        # the two constant instructions sit in the static prologue
        assert len(executor._static_tape) == 2
        assert len(executor._tapes["predict"]) == 2
        assert_bitwise_equal(
            make_evaluator(small_taskset, False).run(program),
            make_evaluator(small_taskset, True).run(program),
        )

    def test_redundant_program_still_degenerate(self, small_taskset):
        program = AlphaProgram(
            setup=[Operation.make("s_const", (), S2, {"constant": 1.0})],
            predict=[Operation.make("s_abs", (S2,), PREDICTION)],
            update=[],
        )
        result = make_evaluator(small_taskset, True).evaluate(program)
        reference = make_evaluator(small_taskset, False).evaluate(program)
        assert not result.is_valid and not reference.is_valid
        assert result.reason == reference.reason
