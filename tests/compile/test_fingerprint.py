"""Canonical-fingerprint tests: mirror collisions and search hit rate."""

import numpy as np
import pytest

from repro.core import (
    AlphaEvaluator,
    AlphaProgram,
    CandidateScorer,
    Dimensions,
    EvolutionConfig,
    EvolutionController,
    FingerprintCache,
    INPUT_MATRIX,
    Mutator,
    Operand,
    Operation,
    PREDICTION,
    domain_expert_alpha,
    fingerprint,
)
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset

S2, S3 = Operand.scalar(2), Operand.scalar(3)


def mirrored_pair():
    """Two programs identical up to commutative operand order."""
    def build(first, second):
        return AlphaProgram(
            setup=[],
            predict=[
                Operation.make("get_scalar", (INPUT_MATRIX,), S2,
                               {"row": 0, "col": 2}),
                Operation.make("get_scalar", (INPUT_MATRIX,), S3,
                               {"row": 1, "col": 2}),
                Operation.make("s_add", (first, second), PREDICTION),
            ],
            update=[],
        )

    return build(S2, S3), build(S3, S2)


class TestMirroredPrograms:
    def test_structural_key_canonicalizes(self):
        left, right = mirrored_pair()
        assert left.structural_key() == right.structural_key()
        assert left.structural_key(canonical=False) != \
            right.structural_key(canonical=False)
        assert left == right

    def test_canonical_fingerprint_collides(self):
        left, right = mirrored_pair()
        assert fingerprint(left) == fingerprint(right)
        assert fingerprint(left, canonical=False) != \
            fingerprint(right, canonical=False)

    def test_mirrored_pair_shares_cache_entry(self):
        """Regression: mirrors must stop consuming duplicate evaluations."""
        left, right = mirrored_pair()
        cache = FingerprintCache()
        _, key, cached = cache.prepare(left)
        assert cached is None
        from repro.core.fitness import FitnessReport
        cache.record(key, FitnessReport(fitness=0.25, ic_valid=0.25,
                                        daily_ic_valid=np.empty(0), is_valid=True))
        _, _, hit = cache.prepare(right)
        assert hit is not None and hit.fitness == 0.25
        assert cache.stats.fingerprint_hits == 1

    def test_legacy_cache_misses_mirror(self):
        left, right = mirrored_pair()
        cache = FingerprintCache(canonical=False)
        _, key, _ = cache.prepare(left)
        from repro.core.fitness import FitnessReport
        cache.record(key, FitnessReport(fitness=0.25, ic_valid=0.25,
                                        daily_ic_valid=np.empty(0), is_valid=True))
        _, _, hit = cache.prepare(right)
        assert hit is None

    def test_scorer_evaluates_mirror_once(self, small_taskset):
        left, right = mirrored_pair()
        scorer = CandidateScorer(
            AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        )
        reports = scorer.score_batch([left, right])
        assert scorer.cache.stats.evaluated == 1
        assert scorer.cache.stats.fingerprint_hits == 1
        assert reports[0].fitness == reports[1].fitness


@pytest.fixture(scope="module")
def tiny_taskset():
    market = SyntheticMarket(MarketConfig(num_stocks=12, num_days=160), seed=9)
    return build_taskset(market.generate(), split=Split(train=60, valid=20, test=20))


class TestSearchHitRate:
    """Acceptance: canonical fingerprints strictly increase the cache hit
    rate of a seeded evolutionary search versus the historical fingerprint.
    """

    def run_search(self, taskset, canonical, seed=13, budget=400):
        dims = Dimensions(taskset.num_features, taskset.window)
        controller = EvolutionController(
            evaluator=AlphaEvaluator(taskset, seed=0, max_train_steps=5,
                                     evaluate_test=False),
            mutator=Mutator(dims, seed=seed),
            config=EvolutionConfig(population_size=12, tournament_size=4,
                                   max_candidates=budget),
            seed=seed,
        )
        controller.scorer.canonical_fingerprint = canonical
        result = controller.run(domain_expert_alpha(dims))
        return result.cache_stats

    def test_canonical_strictly_increases_hit_rate(self, tiny_taskset):
        legacy = self.run_search(tiny_taskset, canonical=False)
        canonical = self.run_search(tiny_taskset, canonical=True)
        # identical candidate stream (fitness reports are identical), so the
        # searched totals agree and the comparison is one-to-one
        assert canonical.searched == legacy.searched
        assert canonical.fingerprint_hits > legacy.fingerprint_hits
        assert canonical.evaluated < legacy.evaluated
        legacy_rate = legacy.fingerprint_hits / legacy.searched
        canonical_rate = canonical.fingerprint_hits / canonical.searched
        assert canonical_rate > legacy_rate

    def test_hit_rate_never_decreases_across_seeds(self, tiny_taskset):
        """Canonical keys only merge render-identical keys further."""
        for seed in (1, 5, 13):
            legacy = self.run_search(tiny_taskset, canonical=False,
                                     seed=seed, budget=150)
            canonical = self.run_search(tiny_taskset, canonical=True,
                                        seed=seed, budget=150)
            assert canonical.fingerprint_hits >= legacy.fingerprint_hits
