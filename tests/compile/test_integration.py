"""End-to-end search parity: compiled vs interpreter execution.

The `--no-compile` escape hatch must be a pure performance switch — an
entire mining search (pruning, caching, cutoffs, tournament selection)
produces the same mined alpha either way, serial or island/pool.
"""

import numpy as np
import pytest

from repro.core import Dimensions, EvolutionConfig, MiningSession, domain_expert_alpha
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset
from repro.parallel import EvaluationPool


@pytest.fixture(scope="module")
def taskset():
    market = SyntheticMarket(MarketConfig(num_stocks=20, num_days=170), seed=3)
    return build_taskset(market.generate(), split=Split(train=70, valid=25, test=25))


def run_search(taskset, use_compile, num_islands=1):
    config = EvolutionConfig(
        population_size=10,
        tournament_size=4,
        max_candidates=60,
        use_compile=use_compile,
        num_islands=num_islands,
    )
    session = MiningSession(
        taskset,
        evolution_config=config,
        max_train_steps=10,
        seed=5,
    )
    dims = Dimensions(taskset.num_features, taskset.window)
    return session.search(domain_expert_alpha(dims), name="alpha")


class TestSearchParity:
    def test_serial_search_identical(self, taskset):
        compiled = run_search(taskset, use_compile=True)
        interpreted = run_search(taskset, use_compile=False)
        assert compiled.program == interpreted.program
        assert compiled.sharpe == interpreted.sharpe
        assert compiled.ic == interpreted.ic
        assert np.array_equal(compiled.valid_returns, interpreted.valid_returns)
        assert compiled.evolution.best_report.fitness == \
            interpreted.evolution.best_report.fitness
        assert compiled.evolution.cache_stats.as_dict() == \
            interpreted.evolution.cache_stats.as_dict()

    def test_island_search_identical(self, taskset):
        compiled = run_search(taskset, use_compile=True, num_islands=2)
        interpreted = run_search(taskset, use_compile=False, num_islands=2)
        assert compiled.program == interpreted.program
        assert compiled.evolution.best_report.fitness == \
            interpreted.evolution.best_report.fitness


class TestPoolParity:
    def test_pool_compiled_matches_interpreter_reports(self, taskset):
        from repro.core import AlphaEvaluator, Mutator
        dims = Dimensions(taskset.num_features, taskset.window)
        mutator = Mutator(dims, seed=4)
        programs = [domain_expert_alpha(dims)]
        for _ in range(5):
            programs.append(mutator.mutate(programs[-1]))
        serial = AlphaEvaluator(taskset, seed=0, max_train_steps=10, compiled=False)
        expected = [serial.evaluate(program).report for program in programs]
        with EvaluationPool(
            taskset, num_workers=2, evaluator_seed=0, max_train_steps=10,
            compiled=True,
        ) as pool:
            got = pool.evaluate(programs)
        for left, right in zip(expected, got):
            same = (left.fitness == right.fitness) or (
                np.isnan(left.fitness) and np.isnan(right.fitness)
            )
            assert same
            assert left.is_valid == right.is_valid
            assert np.array_equal(left.daily_ic_valid, right.daily_ic_valid)
