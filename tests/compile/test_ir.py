"""Tests for SSA lowering of alpha programs."""

from repro.compile import lower_program
from repro.core import (
    AlphaProgram,
    INPUT_MATRIX,
    LABEL,
    Operand,
    Operation,
    PREDICTION,
    domain_expert_alpha,
    neural_network_alpha,
)


def expert(dims):
    return domain_expert_alpha(dims)


class TestLowering:
    def test_instruction_count_matches_program(self, dims):
        program = neural_network_alpha(dims)
        ir = lower_program(program)
        assert ir.num_instructions == program.num_operations

    def test_component_inputs_are_reads_before_writes(self, dims):
        ir = lower_program(expert(dims))
        predict = ir.component("predict")
        assert set(predict.inputs) == {INPUT_MATRIX}
        # setup/update only write constants, so they read nothing
        assert ir.component("setup").inputs == {}
        assert ir.component("update").inputs == {}

    def test_exports_point_at_final_writes(self, dims):
        s2 = Operand.scalar(2)
        program = AlphaProgram(
            setup=[],
            predict=[
                Operation.make("get_scalar", (INPUT_MATRIX,), s2,
                               {"row": 0, "col": 0}),
                Operation.make("s_abs", (s2,), s2),
                Operation.make("s_sign", (s2,), PREDICTION),
            ],
            update=[],
        )
        predict = lower_program(program).component("predict")
        # the export of s2 is the s_abs result, not the extraction
        assert predict.exports[s2] == predict.instructions[1].result
        assert predict.exports[PREDICTION] == predict.instructions[2].result

    def test_within_component_reads_resolve_to_latest_write(self, dims):
        s2 = Operand.scalar(2)
        program = AlphaProgram(
            setup=[],
            predict=[
                Operation.make("get_scalar", (INPUT_MATRIX,), s2,
                               {"row": 0, "col": 0}),
                Operation.make("s_abs", (s2,), s2),
                Operation.make("s_sign", (s2,), PREDICTION),
            ],
            update=[],
        )
        predict = lower_program(program).component("predict")
        extract, absolute, sign = predict.instructions
        assert absolute.inputs == (extract.result,)
        assert sign.inputs == (absolute.result,)

    def test_update_reads_label_as_input(self, dims):
        ir = lower_program(neural_network_alpha(dims))
        assert LABEL in ir.component("update").inputs

    def test_value_ids_unique_across_program(self, dims):
        ir = lower_program(neural_network_alpha(dims))
        results = [
            instr.result
            for component in ir.components.values()
            for instr in component.instructions
        ]
        assert len(results) == len(set(results))

    def test_render_is_stable(self, dims):
        first = lower_program(expert(dims)).render()
        second = lower_program(expert(dims)).render()
        assert first == second
        assert "get_scalar(m0" in first
        assert "out s1=" in first

    def test_render_independent_of_intermediate_registers(self, dims):
        """After dead-store elimination restricts the exports to observable
        operands, the rendering no longer mentions temp register names."""
        from repro.compile import eliminate_dead_code

        def variant(temp_index):
            temp = Operand.scalar(temp_index)
            return AlphaProgram(
                setup=[],
                predict=[
                    Operation.make("get_scalar", (INPUT_MATRIX,), temp,
                                   {"row": 0, "col": 0}),
                    Operation.make("s_abs", (temp,), PREDICTION),
                ],
                update=[],
            )

        first, _, _ = eliminate_dead_code(lower_program(variant(2)))
        second, _, _ = eliminate_dead_code(lower_program(variant(7)))
        assert first.render() == second.render()
