"""Tests for the static lookback analysis behind bounded delta-replay."""

from repro.compile import (
    analyze_dataflow,
    analyze_lookback,
    compile_program,
    describe_compilation,
    lower_program,
)
from repro.core import (
    AlphaProgram,
    INPUT_MATRIX,
    LABEL,
    Operand,
    Operation,
    PREDICTION,
    domain_expert_alpha,
    neural_network_alpha,
    noop_alpha,
)

S3, S4, S5 = (Operand.scalar(i) for i in (3, 4, 5))


def lookback_of(program):
    ir = lower_program(program)
    return analyze_lookback(ir, analyze_dataflow(ir))


def predict_only(*operations):
    return AlphaProgram(setup=[], predict=list(operations), update=[])


class TestSeedAlphas:
    def test_noop_alpha_is_static(self, dims):
        info = lookback_of(noop_alpha(dims))
        assert info.max_lookback == 0
        assert info.bounded

    def test_domain_expert_alpha_is_static(self, dims):
        # D's Predict() exports nothing loop-carried: every day's prediction
        # is a pure function of that day's m0, so no spin-up is needed.
        info = lookback_of(domain_expert_alpha(dims))
        assert info.max_lookback == 0

    def test_neural_network_alpha_has_horizon_one(self, dims):
        # NN's Predict() rewrites its activations each day from frozen
        # weights and the fresh m0 — one clean day makes them exact.
        info = lookback_of(neural_network_alpha(dims))
        assert info.max_lookback == 1
        assert all(depth in (0, 1) for depth in info.horizons.values())
        assert any(depth == 1 for depth in info.horizons.values())


class TestHandBuiltHorizons:
    def test_carried_from_input_only_has_horizon_one(self):
        # s3 is read before Predict() overwrites it from m0 alone: carried
        # and mutable, but exact after a single clean replay day.
        program = predict_only(
            Operation.make("s_add", (S3, S3), S4),
            Operation.make("get_scalar", (INPUT_MATRIX,), S3,
                           {"row": 0, "col": 0}),
            Operation.make("s_add", (S4, S3), PREDICTION),
        )
        info = lookback_of(program)
        assert info.horizons[S3] == 1
        assert info.max_lookback == 1

    def test_self_recurrence_is_unbounded(self):
        # s3 += f(m0): an EMA-style accumulator never forgets its seed.
        program = predict_only(
            Operation.make("get_scalar", (INPUT_MATRIX,), S4,
                           {"row": 0, "col": 0}),
            Operation.make("s_add", (S3, S4), S3),
            Operation.make("s_add", (S3, S4), PREDICTION),
        )
        info = lookback_of(program)
        assert info.horizons[S3] is None
        assert info.max_lookback is None
        assert not info.bounded

    def test_update_only_state_is_frozen(self):
        # s3 is written only by Update(), which never runs during inference:
        # the carried value is frozen memory with horizon 0.
        label = Operand.scalar(0)
        program = AlphaProgram(
            setup=[],
            predict=[
                Operation.make("get_scalar", (INPUT_MATRIX,), S4,
                               {"row": 0, "col": 0}),
                Operation.make("s_add", (S4, S3), PREDICTION),
            ],
            update=[Operation.make("s_add", (label, label), S3)],
        )
        info = lookback_of(program)
        assert info.horizons[S3] == 0
        assert info.max_lookback == 0

    def test_horizons_exclude_inputs_and_labels(self, dims):
        info = lookback_of(neural_network_alpha(dims))
        assert INPUT_MATRIX not in info.horizons
        assert LABEL not in info.horizons
        assert Operand.scalar(0) not in info.horizons


class TestDescribe:
    def test_static_description(self, dims):
        info = lookback_of(domain_expert_alpha(dims))
        assert info.describe() == "0 days (inference state is static)"

    def test_bounded_description(self, dims):
        assert lookback_of(neural_network_alpha(dims)).describe() == "1 days"

    def test_unbounded_description_names_operands(self):
        program = predict_only(
            Operation.make("get_scalar", (INPUT_MATRIX,), S4,
                           {"row": 0, "col": 0}),
            Operation.make("s_add", (S3, S4), S3),
            Operation.make("s_add", (S3, S4), PREDICTION),
        )
        text = lookback_of(program).describe()
        assert "unbounded" in text
        assert S3.name in text


class TestCompilerIntegration:
    def test_compiled_program_carries_lookback(self, dims):
        compiled = compile_program(neural_network_alpha(dims))
        assert compiled.lookback is not None
        assert compiled.lookback.max_lookback == 1

    def test_describe_compilation_reports_lookback(self, dims):
        report = describe_compilation(domain_expert_alpha(dims))
        assert "delta-replay lookback:" in report
        assert "0 days (inference state is static)" in report
