"""Tests for the IR optimiser passes and the canonical fingerprint key."""

import numpy as np

from repro.compile import (
    analyze_dataflow,
    canonical_key,
    canonicalize_commutative,
    compile_program,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    lower_program,
)
from repro.core import (
    AlphaProgram,
    INPUT_MATRIX,
    LABEL,
    Operand,
    Operation,
    PREDICTION,
    domain_expert_alpha,
    neural_network_alpha,
    prune_program,
    random_alpha,
)
from repro.core.ops import CLIP_VALUE

S2, S3, S4, S5 = (Operand.scalar(i) for i in (2, 3, 4, 5))


def predict_only(*operations):
    return AlphaProgram(setup=[], predict=list(operations), update=[])


class TestConstantFolding:
    def test_folds_scalar_chain(self):
        program = predict_only(
            Operation.make("s_const", (), S2, {"constant": 2.0}),
            Operation.make("s_const", (), S3, {"constant": 3.0}),
            Operation.make("s_add", (S2, S3), S4),
            Operation.make("get_scalar", (INPUT_MATRIX,), S5, {"row": 0, "col": 0}),
            Operation.make("s_mul", (S4, S5), PREDICTION),
        )
        ir, stats = fold_constants(lower_program(program))
        assert stats.rewritten == 1
        folded = ir.component("predict").instructions[2]
        assert folded.op == "s_const"
        assert folded.param_dict["constant"] == 5.0

    def test_folded_value_is_sanitized(self):
        program = predict_only(
            Operation.make("s_const", (), S2, {"constant": CLIP_VALUE}),
            Operation.make("s_const", (), S3, {"constant": CLIP_VALUE}),
            Operation.make("s_add", (S2, S3), PREDICTION),
        )
        ir, _ = fold_constants(lower_program(program))
        folded = ir.component("predict").instructions[2]
        assert folded.param_dict["constant"] == CLIP_VALUE

    def test_protected_divide_semantics(self):
        program = predict_only(
            Operation.make("s_const", (), S2, {"constant": 4.0}),
            Operation.make("s_const", (), S3, {"constant": 0.0}),
            Operation.make("s_div", (S2, S3), PREDICTION),
        )
        ir, _ = fold_constants(lower_program(program))
        folded = ir.component("predict").instructions[2]
        # divide-by-(almost-)zero is protected: denominator becomes 1.0
        assert folded.param_dict["constant"] == 4.0

    def test_transcendentals_not_folded(self):
        program = predict_only(
            Operation.make("s_const", (), S2, {"constant": 0.5}),
            Operation.make("s_sin", (S2,), PREDICTION),
        )
        ir, stats = fold_constants(lower_program(program))
        assert stats.rewritten == 0
        assert ir.component("predict").instructions[1].op == "s_sin"

    def test_non_constant_inputs_not_folded(self):
        program = predict_only(
            Operation.make("get_scalar", (INPUT_MATRIX,), S2, {"row": 0, "col": 0}),
            Operation.make("s_const", (), S3, {"constant": 1.0}),
            Operation.make("s_add", (S2, S3), PREDICTION),
        )
        _, stats = fold_constants(lower_program(program))
        assert stats.rewritten == 0


class TestCanonicalization:
    def mirror(self, swapped):
        first, second = (S3, S2) if swapped else (S2, S3)
        return predict_only(
            Operation.make("get_scalar", (INPUT_MATRIX,), S2, {"row": 0, "col": 0}),
            Operation.make("get_scalar", (INPUT_MATRIX,), S3, {"row": 1, "col": 1}),
            Operation.make("s_add", (first, second), PREDICTION),
        )

    def test_mirrored_commutative_operands_share_key(self):
        assert canonical_key(self.mirror(False)) == canonical_key(self.mirror(True))

    def test_non_commutative_operands_keep_order(self):
        def sub(swapped):
            first, second = (S3, S2) if swapped else (S2, S3)
            return predict_only(
                Operation.make("get_scalar", (INPUT_MATRIX,), S2, {"row": 0, "col": 0}),
                Operation.make("get_scalar", (INPUT_MATRIX,), S3, {"row": 1, "col": 1}),
                Operation.make("s_sub", (first, second), PREDICTION),
            )

        assert canonical_key(sub(False)) != canonical_key(sub(True))

    def test_reorder_counted(self):
        ir, stats = canonicalize_commutative(lower_program(self.mirror(True)))
        ir2, stats2 = canonicalize_commutative(lower_program(self.mirror(False)))
        # exactly one of the two written orders is already canonical
        assert sorted([stats.rewritten, stats2.rewritten]) == [0, 1]
        assert ir.render() == ir2.render()


class TestCSE:
    def test_duplicate_subexpression_merged(self):
        program = predict_only(
            Operation.make("get_scalar", (INPUT_MATRIX,), S2, {"row": 0, "col": 0}),
            Operation.make("get_scalar", (INPUT_MATRIX,), S3, {"row": 0, "col": 0}),
            Operation.make("s_add", (S2, S3), PREDICTION),
        )
        ir, stats = eliminate_common_subexpressions(lower_program(program))
        assert stats.removed == 1
        instructions = ir.component("predict").instructions
        assert len(instructions) == 2
        # both inputs of the add now reference the surviving extraction
        add = instructions[1]
        assert add.inputs == (instructions[0].result, instructions[0].result)

    def test_different_params_not_merged(self):
        program = predict_only(
            Operation.make("get_scalar", (INPUT_MATRIX,), S2, {"row": 0, "col": 0}),
            Operation.make("get_scalar", (INPUT_MATRIX,), S3, {"row": 1, "col": 0}),
            Operation.make("s_add", (S2, S3), PREDICTION),
        )
        _, stats = eliminate_common_subexpressions(lower_program(program))
        assert stats.removed == 0

    def test_overwritten_register_not_falsely_merged(self):
        """A duplicate whose original was overwritten must still be available.

        In SSA the value survives register reuse, which is exactly why CSE
        runs on the IR and not on operand-addressed operations.
        """
        program = predict_only(
            Operation.make("get_scalar", (INPUT_MATRIX,), S4, {"row": 0, "col": 0}),
            Operation.make("s_abs", (S4,), S4),                     # overwrites s4
            Operation.make("get_scalar", (INPUT_MATRIX,), S5, {"row": 0, "col": 0}),
            Operation.make("s_sub", (S5, S4), PREDICTION),
        )
        ir, stats = eliminate_common_subexpressions(lower_program(program))
        assert stats.removed == 1
        instructions = ir.component("predict").instructions
        extract, absolute, sub = instructions
        # s5's extraction dedups onto the s4 extraction's *value*, while the
        # abs result stays distinct
        assert sub.inputs == (extract.result, absolute.result)

    def test_exports_follow_merged_values(self):
        program = predict_only(
            Operation.make("get_scalar", (INPUT_MATRIX,), S2, {"row": 0, "col": 0}),
            Operation.make("get_scalar", (INPUT_MATRIX,), PREDICTION,
                           {"row": 0, "col": 0}),
        )
        ir, _ = eliminate_common_subexpressions(lower_program(program))
        predict = ir.component("predict")
        assert predict.exports[PREDICTION] == predict.instructions[0].result


class TestDeadCodeElimination:
    def test_matches_program_pruning(self, dims):
        """DSE keeps exactly the operations backward-liveness pruning keeps."""
        for seed in range(8):
            program = random_alpha(dims, seed=seed)
            ir, stats, info = eliminate_dead_code(lower_program(program))
            pruned = prune_program(program)
            assert ir.num_instructions == pruned.kept_operations or pruned.is_redundant
            if not pruned.is_redundant:
                assert stats.removed == pruned.removed_operations
            assert info.is_redundant == pruned.is_redundant

    def test_redundant_program_flagged(self):
        program = predict_only(
            Operation.make("s_const", (), S2, {"constant": 1.0}),
            Operation.make("s_abs", (S2,), PREDICTION),
        )
        _, _, info = eliminate_dead_code(lower_program(program))
        assert info.is_redundant

    def test_carried_state_detected(self, dims):
        info = analyze_dataflow(lower_program(neural_network_alpha(dims)))
        # the NN's weights are carried parameters
        assert Operand.matrix(1) in info.carried
        assert Operand.vector(4) in info.carried
        assert LABEL not in info.carried

    def test_idempotent(self, dims):
        program = neural_network_alpha(dims)
        ir1, _, _ = eliminate_dead_code(lower_program(program))
        ir2, stats2, _ = eliminate_dead_code(ir1)
        assert stats2.removed == 0
        assert ir1.render() == ir2.render()


class TestCanonicalKey:
    def test_register_renaming_collides(self):
        def variant(temp):
            return predict_only(
                Operation.make("get_scalar", (INPUT_MATRIX,), temp,
                               {"row": 2, "col": 3}),
                Operation.make("s_abs", (temp,), PREDICTION),
            )

        assert canonical_key(variant(S2)) == canonical_key(variant(S5))

    def test_redundant_ops_do_not_change_key(self, dims):
        program = domain_expert_alpha(dims)
        noisy = program.copy()
        noisy.predict.insert(
            0, Operation.make("s_abs", (Operand.scalar(7),), Operand.scalar(8))
        )
        assert canonical_key(program) == canonical_key(noisy)

    def test_carried_register_renaming_is_conservative(self):
        """Cross-component register renaming is *not* canonicalised.

        Carried state is addressed by operand name across components, so the
        key keeps those names: the canonicalisation never merges programs
        whose cross-component bindings differ (conservative by design —
        false fingerprint collisions would corrupt cached fitness).
        """
        def carried(operand):
            return AlphaProgram(
                setup=[Operation.make("s_const", (), operand, {"constant": 2.0})],
                predict=[
                    Operation.make("get_scalar", (INPUT_MATRIX,), S5,
                                   {"row": 0, "col": 0}),
                    Operation.make("s_mul", (S5, operand), PREDICTION),
                ],
                update=[],
            )

        assert canonical_key(carried(S2)) != canonical_key(carried(S3))

    def test_canonical_pipeline_idempotent_on_key(self, dims):
        for seed in range(4):
            program = random_alpha(dims, seed=seed)
            assert canonical_key(program) == canonical_key(program)


class TestCompiledProgram:
    def test_fused_eligibility_expert(self, dims):
        assert compile_program(domain_expert_alpha(dims)).fused_inference

    def test_fused_eligibility_nn(self, dims):
        # the NN predicts from static weights during inference (Update does
        # the writes, and Update does not run at inference time)
        assert compile_program(neural_network_alpha(dims)).fused_inference

    def test_label_reader_not_fused(self):
        program = predict_only(
            Operation.make("get_scalar", (INPUT_MATRIX,), S2, {"row": 0, "col": 0}),
            Operation.make("s_add", (S2, LABEL), PREDICTION),
        )
        assert not compile_program(program).fused_inference

    def test_self_feeding_predict_not_fused(self):
        program = AlphaProgram(
            setup=[],
            predict=[
                Operation.make("get_scalar", (INPUT_MATRIX,), S2, {"row": 0, "col": 0}),
                Operation.make("s_add", (S3, S2), S3),      # reads its own write
                Operation.make("s_abs", (S3,), PREDICTION),
            ],
            update=[],
        )
        assert not compile_program(program).fused_inference

    def test_pass_stats_recorded(self, dims):
        compiled = compile_program(domain_expert_alpha(dims))
        assert [stats.name for stats in compiled.pass_stats] == ["cse", "dse"]
        assert compiled.pass_stats[1].removed == 2  # the two placeholder consts


def test_numpy_commutativity_of_sorted_operands():
    """Sanity: reordering add/mul operands is bitwise safe (IEEE)."""
    rng = np.random.default_rng(0)
    a, b = rng.normal(size=100), rng.normal(size=100)
    assert np.array_equal(a + b, b + a)
    assert np.array_equal(a * b, b * a)
