"""Shared pytest fixtures: small, fast, deterministic data objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AlphaEvaluator, Dimensions, Mutator
from repro.data import (
    MarketConfig,
    Split,
    SyntheticMarket,
    TaskSet,
    build_taskset,
)


@pytest.fixture(scope="session")
def small_panel():
    """A small synthetic OHLCV panel shared by the data tests."""
    market = SyntheticMarket(MarketConfig(num_stocks=30, num_days=220), seed=123)
    return market.generate()


@pytest.fixture(scope="session")
def small_taskset(small_panel) -> TaskSet:
    """A small task set (30 stocks, ~170 sample days) shared across tests."""
    return build_taskset(small_panel, split=Split(train=110, valid=30, test=30))


@pytest.fixture(scope="session")
def dims(small_taskset) -> Dimensions:
    """Problem dimensions matching the small task set."""
    return Dimensions(small_taskset.num_features, small_taskset.window)


@pytest.fixture()
def evaluator(small_taskset) -> AlphaEvaluator:
    """A fresh evaluator over the small task set."""
    return AlphaEvaluator(small_taskset, seed=0, max_train_steps=40)


@pytest.fixture()
def mutator(dims) -> Mutator:
    """A seeded mutator over the small dimensions."""
    return Mutator(dims, seed=42)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic RNG for test-local sampling."""
    return np.random.default_rng(7)
