"""Tests for the pruning + fingerprint cache."""

import numpy as np

from repro.core import (
    AlphaProgram,
    FingerprintCache,
    Operand,
    Operation,
    PREDICTION,
    domain_expert_alpha,
    fingerprint,
    prune_program,
)
from repro.core.fitness import FitnessReport


def expert(dims):
    return domain_expert_alpha(dims)


def expert_with_redundant_op(dims):
    program = domain_expert_alpha(dims)
    program.predict.insert(
        0, Operation.make("s_abs", (Operand.scalar(7),), Operand.scalar(8))
    )
    return program


def redundant_program():
    return AlphaProgram(
        setup=[Operation.make("s_const", (), Operand.scalar(2), {"constant": 1.0})],
        predict=[Operation.make("s_abs", (Operand.scalar(2),), PREDICTION)],
        update=[Operation.make("s_const", (), Operand.scalar(3), {"constant": 0.0})],
    )


def make_report(fitness=0.5):
    return FitnessReport(fitness=fitness, ic_valid=fitness,
                         daily_ic_valid=np.empty(0), is_valid=True)


class TestFingerprint:
    def test_stable(self, dims):
        assert fingerprint(expert(dims)) == fingerprint(expert(dims))

    def test_differs_for_different_programs(self, dims):
        a = expert(dims)
        b = expert(dims)
        b.predict.pop()
        assert fingerprint(a) != fingerprint(b)

    def test_pruned_programs_collide(self, dims):
        """Alphas differing only in redundant operations share a fingerprint."""
        plain = prune_program(expert(dims)).program
        noisy = prune_program(expert_with_redundant_op(dims)).program
        assert fingerprint(plain) == fingerprint(noisy)


class TestFingerprintCache:
    def test_miss_then_hit(self, dims):
        cache = FingerprintCache()
        _, key, cached = cache.prepare(expert(dims))
        assert cached is None
        cache.record(key, make_report(0.4))
        _, _, second = cache.prepare(expert(dims))
        assert second is not None
        assert second.fitness == 0.4
        assert cache.stats.evaluated == 1
        assert cache.stats.fingerprint_hits == 1

    def test_redundant_alpha_short_circuits(self, dims):
        cache = FingerprintCache()
        _, key, cached = cache.prepare(redundant_program())
        assert key is None
        assert cached is not None
        assert not cached.is_valid
        assert cache.stats.redundant_alphas == 1

    def test_redundant_operations_share_entry(self, dims):
        cache = FingerprintCache()
        _, key, _ = cache.prepare(expert(dims))
        cache.record(key, make_report(0.7))
        _, _, cached = cache.prepare(expert_with_redundant_op(dims))
        assert cached is not None
        assert cached.fitness == 0.7

    def test_pruned_operation_counter(self, dims):
        cache = FingerprintCache()
        cache.prepare(expert_with_redundant_op(dims))
        # the inserted junk op plus the two placeholder setup/update constants
        assert cache.stats.pruned_operations == 3

    def test_disabled_cache_never_prunes_or_hits(self, dims):
        cache = FingerprintCache(enabled=False)
        prune_result, key, cached = cache.prepare(expert(dims))
        assert prune_result is None and key is None and cached is None
        cache.record(key, make_report())
        assert cache.stats.evaluated == 1
        assert len(cache) == 0

    def test_searched_counts_all_dispatch_paths(self, dims):
        cache = FingerprintCache()
        _, key, _ = cache.prepare(expert(dims))
        cache.record(key, make_report())
        cache.prepare(expert(dims))            # hit
        cache.prepare(redundant_program())     # redundant
        assert cache.stats.searched == 3
        assert cache.stats.skipped == 2
        as_dict = cache.stats.as_dict()
        assert as_dict["searched"] == 3
        assert as_dict["evaluated"] == 1

    def test_clear_keeps_stats(self, dims):
        cache = FingerprintCache()
        _, key, _ = cache.prepare(expert(dims))
        cache.record(key, make_report())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.evaluated == 1
