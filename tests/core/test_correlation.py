"""Tests for the weak-correlation cutoff filter."""

import numpy as np
import pytest

from repro.core import CorrelationFilter
from repro.errors import ConfigurationError


class TestCorrelationFilter:
    def test_no_references_always_passes(self, rng):
        correlation_filter = CorrelationFilter()
        series = rng.normal(size=50)
        assert correlation_filter.passes(series)
        assert correlation_filter.max_correlation(series) == 0.0

    def test_identical_series_rejected(self, rng):
        correlation_filter = CorrelationFilter()
        series = rng.normal(size=60)
        correlation_filter.add_reference("existing", series)
        assert not correlation_filter.passes(series)
        assert correlation_filter.max_correlation(series) == pytest.approx(1.0)

    def test_independent_series_passes(self, rng):
        correlation_filter = CorrelationFilter(cutoff=0.15)
        correlation_filter.add_reference("existing", rng.normal(size=2000))
        assert correlation_filter.passes(rng.normal(size=2000))

    def test_anti_correlated_rejected_by_default(self, rng):
        correlation_filter = CorrelationFilter()
        series = rng.normal(size=100)
        correlation_filter.add_reference("existing", series)
        assert not correlation_filter.passes(-series)

    def test_signed_mode_accepts_anti_correlation(self, rng):
        correlation_filter = CorrelationFilter(use_absolute=False)
        series = rng.normal(size=100)
        correlation_filter.add_reference("existing", series)
        assert correlation_filter.passes(-series)

    def test_max_over_multiple_references(self, rng):
        correlation_filter = CorrelationFilter()
        a = rng.normal(size=200)
        b = rng.normal(size=200)
        correlation_filter.add_reference("a", a)
        correlation_filter.add_reference("b", b)
        mixed = 0.9 * b + 0.1 * rng.normal(size=200)
        values = correlation_filter.correlations(mixed)
        assert set(values) == {"a", "b"}
        assert correlation_filter.max_correlation(mixed) == pytest.approx(
            max(abs(v) for v in values.values())
        )
        assert values["b"] > values["a"]

    def test_reference_names(self, rng):
        correlation_filter = CorrelationFilter()
        correlation_filter.add_reference("alpha_0", rng.normal(size=10))
        assert correlation_filter.reference_names == ("alpha_0",)
        assert correlation_filter.num_references == 1

    def test_cutoff_boundary_inclusive(self):
        correlation_filter = CorrelationFilter(cutoff=1.0)
        correlation_filter.add_reference("existing", np.array([1.0, 2.0, 3.0]))
        assert correlation_filter.passes(np.array([1.0, 2.0, 3.0]))

    def test_invalid_cutoff(self):
        with pytest.raises(ConfigurationError):
            CorrelationFilter(cutoff=0.0)
        with pytest.raises(ConfigurationError):
            CorrelationFilter(cutoff=1.5)

    def test_too_short_reference_rejected(self):
        correlation_filter = CorrelationFilter()
        with pytest.raises(ConfigurationError):
            correlation_filter.add_reference("existing", np.array([1.0]))

    def test_constant_candidate_counts_as_uncorrelated(self, rng):
        correlation_filter = CorrelationFilter()
        correlation_filter.add_reference("existing", rng.normal(size=30))
        assert correlation_filter.max_correlation(np.zeros(30)) == 0.0
