"""Tests for the regularised evolutionary search."""

import numpy as np
import pytest

from repro.backtest import BacktestEngine
from repro.core import (
    AlphaEvaluator,
    CandidateScorer,
    CorrelationFilter,
    EvolutionConfig,
    EvolutionController,
    Mutator,
    domain_expert_alpha,
    get_initialization,
)
from repro.core.fitness import INVALID_FITNESS
from repro.errors import EvolutionError


def make_controller(taskset, dims, max_candidates=80, use_pruning=True,
                    correlation_filter=None, seed=3):
    evaluator = AlphaEvaluator(taskset, seed=0, max_train_steps=20)
    mutator = Mutator(dims, seed=seed)
    engine = BacktestEngine(taskset, long_k=5, short_k=5) if correlation_filter else None
    return EvolutionController(
        evaluator=evaluator,
        mutator=mutator,
        config=EvolutionConfig(
            population_size=10,
            tournament_size=4,
            max_candidates=max_candidates,
            use_pruning=use_pruning,
        ),
        correlation_filter=correlation_filter,
        backtest_engine=engine,
        seed=seed,
    )


class TestEvolutionConfig:
    def test_invalid_population(self):
        with pytest.raises(EvolutionError):
            EvolutionConfig(population_size=1)

    def test_invalid_tournament(self):
        with pytest.raises(EvolutionError):
            EvolutionConfig(population_size=5, tournament_size=10)

    def test_budget_required(self):
        with pytest.raises(EvolutionError):
            EvolutionConfig(max_candidates=None, max_seconds=None)

    def test_invalid_parallel_settings(self):
        with pytest.raises(EvolutionError):
            EvolutionConfig(num_workers=0)
        with pytest.raises(EvolutionError):
            EvolutionConfig(num_islands=0)

    def test_negative_budgets_rejected(self):
        with pytest.raises(EvolutionError):
            EvolutionConfig(max_candidates=0)
        with pytest.raises(EvolutionError):
            EvolutionConfig(max_candidates=None, max_seconds=-1.0)


class TestEvolutionController:
    def test_requires_engine_with_filter(self, small_taskset, dims):
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        with pytest.raises(EvolutionError):
            EvolutionController(
                evaluator=evaluator,
                mutator=Mutator(dims, seed=0),
                correlation_filter=CorrelationFilter(),
                backtest_engine=None,
            )

    def test_run_respects_candidate_budget(self, small_taskset, dims):
        controller = make_controller(small_taskset, dims, max_candidates=60)
        result = controller.run(domain_expert_alpha(dims))
        assert result.candidates_generated == 60
        assert result.searched_alphas == 60

    def test_best_is_at_least_initial(self, small_taskset, dims):
        controller = make_controller(small_taskset, dims, max_candidates=120)
        initial = controller.evaluator.evaluate(domain_expert_alpha(dims))
        result = controller.run(domain_expert_alpha(dims))
        assert result.best_report.fitness >= initial.fitness - 1e-12

    def test_trajectory_monotone_and_aligned(self, small_taskset, dims):
        controller = make_controller(small_taskset, dims, max_candidates=80)
        result = controller.run(domain_expert_alpha(dims))
        fitness_curve = [point.best_fitness for point in result.trajectory]
        assert fitness_curve == sorted(fitness_curve)
        candidates = [point.candidates for point in result.trajectory]
        assert candidates == sorted(candidates)
        assert candidates[-1] == result.candidates_generated

    def test_pruning_reduces_evaluations(self, small_taskset, dims):
        with_pruning = make_controller(small_taskset, dims, max_candidates=100,
                                       use_pruning=True)
        without_pruning = make_controller(small_taskset, dims, max_candidates=100,
                                          use_pruning=False)
        pruned_result = with_pruning.run(domain_expert_alpha(dims))
        full_result = without_pruning.run(domain_expert_alpha(dims))
        assert pruned_result.cache_stats.evaluated < full_result.cache_stats.evaluated
        assert full_result.cache_stats.evaluated == 100

    def test_time_budget_stops_search(self, small_taskset, dims):
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        controller = EvolutionController(
            evaluator=evaluator,
            mutator=Mutator(dims, seed=1),
            config=EvolutionConfig(population_size=10, tournament_size=4,
                                   max_candidates=None, max_seconds=0.5),
        )
        result = controller.run(domain_expert_alpha(dims))
        assert result.elapsed_seconds < 5.0
        assert result.candidates_generated > 0

    def test_correlation_filter_invalidates_clones(self, small_taskset, dims):
        """With the initial alpha itself registered as a reference, candidates
        that behave like it must be discarded as correlated."""
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        engine = BacktestEngine(small_taskset, long_k=5, short_k=5)
        expert = domain_expert_alpha(dims)
        reference_returns = engine.portfolio_returns(
            evaluator.run(expert, splits=("valid",))["valid"], split="valid"
        )
        correlation_filter = CorrelationFilter()
        correlation_filter.add_reference("alpha_D_0", reference_returns)
        controller = make_controller(small_taskset, dims, max_candidates=40,
                                     correlation_filter=correlation_filter)
        report = controller.score(expert)
        assert not report.is_valid
        assert report.fitness == INVALID_FITNESS
        assert "cutoff" in report.reason

    def test_deterministic_given_seeds(self, small_taskset, dims):
        a = make_controller(small_taskset, dims, max_candidates=60, seed=9)
        b = make_controller(small_taskset, dims, max_candidates=60, seed=9)
        result_a = a.run(domain_expert_alpha(dims))
        result_b = b.run(domain_expert_alpha(dims))
        assert result_a.best_program == result_b.best_program
        assert result_a.best_report.fitness == pytest.approx(result_b.best_report.fitness)

    def test_run_is_reusable_with_fresh_cache(self, small_taskset, dims):
        controller = make_controller(small_taskset, dims, max_candidates=40)
        first = controller.run(domain_expert_alpha(dims))
        second = controller.run(domain_expert_alpha(dims))
        # Each run starts from a fresh fingerprint cache and counter, so the
        # per-run statistics do not accumulate across calls.
        assert first.candidates_generated == second.candidates_generated == 40
        assert first.cache_stats.searched == 40
        assert second.cache_stats.searched == 40
        assert len(controller.cache) <= second.cache_stats.evaluated


class TestCandidateScorer:
    def test_score_batch_matches_sequential_scoring(self, small_taskset, dims):
        mutator = Mutator(dims, seed=4)
        programs = [get_initialization(code, dims, seed=2) for code in ("D", "NOOP", "R")]
        for _ in range(4):
            programs.append(mutator.mutate(programs[-1]))
        programs += programs[:2]  # duplicates exercise the cache paths

        sequential = CandidateScorer(AlphaEvaluator(small_taskset, seed=0, max_train_steps=20))
        expected = [sequential.score(program) for program in programs]
        batched = CandidateScorer(AlphaEvaluator(small_taskset, seed=0, max_train_steps=20))
        got = batched.score_batch(programs)

        for left, right in zip(got, expected):
            assert left.fitness == right.fitness
            assert left.is_valid == right.is_valid
            assert np.array_equal(left.daily_ic_valid, right.daily_ic_valid)
        assert batched.cache.stats.as_dict() == sequential.cache.stats.as_dict()
        assert batched.candidates_generated == sequential.candidates_generated

    def test_reset_clears_cache_and_counter(self, small_taskset, dims):
        scorer = CandidateScorer(AlphaEvaluator(small_taskset, seed=0, max_train_steps=20))
        scorer.score(domain_expert_alpha(dims))
        assert scorer.candidates_generated == 1
        scorer.reset()
        assert scorer.candidates_generated == 0
        assert len(scorer.cache) == 0
        assert scorer.cache.stats.searched == 0

    def test_requires_engine_with_filter(self, small_taskset):
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        with pytest.raises(EvolutionError):
            CandidateScorer(evaluator, correlation_filter=CorrelationFilter())
