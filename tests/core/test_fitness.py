"""Tests for the IC fitness functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import daily_ic, mean_ic
from repro.core.fitness import FitnessReport, INVALID_FITNESS
from repro.errors import ExecutionError


class TestDailyIC:
    def test_perfect_correlation(self, rng):
        labels = rng.normal(size=(10, 20))
        np.testing.assert_allclose(daily_ic(labels, labels), 1.0)

    def test_perfect_anticorrelation(self, rng):
        labels = rng.normal(size=(10, 20))
        np.testing.assert_allclose(daily_ic(-labels, labels), -1.0)

    def test_constant_predictions_give_zero(self, rng):
        labels = rng.normal(size=(5, 10))
        predictions = np.ones_like(labels)
        np.testing.assert_allclose(daily_ic(predictions, labels), 0.0)

    def test_matches_numpy_corrcoef(self, rng):
        predictions = rng.normal(size=(6, 30))
        labels = rng.normal(size=(6, 30))
        series = daily_ic(predictions, labels)
        for day in range(6):
            expected = np.corrcoef(predictions[day], labels[day])[0, 1]
            np.testing.assert_allclose(series[day], expected, rtol=1e-9)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ExecutionError):
            daily_ic(rng.normal(size=(5, 10)), rng.normal(size=(5, 11)))

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(ExecutionError):
            daily_ic(rng.normal(size=10), rng.normal(size=10))

    @given(hnp.arrays(np.float64, (4, 12), elements=st.floats(-1e3, 1e3)),
           hnp.arrays(np.float64, (4, 12), elements=st.floats(-1e3, 1e3)))
    @settings(max_examples=30, deadline=None)
    def test_bounded_in_unit_interval(self, predictions, labels):
        series = daily_ic(predictions, labels)
        assert (np.abs(series) <= 1.0 + 1e-9).all()


class TestMeanIC:
    def test_is_mean_of_daily(self, rng):
        predictions = rng.normal(size=(8, 15))
        labels = rng.normal(size=(8, 15))
        np.testing.assert_allclose(
            mean_ic(predictions, labels), daily_ic(predictions, labels).mean()
        )

    def test_empty_returns_zero(self):
        assert mean_ic(np.empty((0, 5)), np.empty((0, 5))) == 0.0


class TestFitnessReport:
    def test_invalid_factory(self):
        report = FitnessReport.invalid("broke")
        assert not report.is_valid
        assert report.fitness == INVALID_FITNESS
        assert report.reason == "broke"
        assert np.isnan(report.ic_valid)

    def test_invalid_fitness_below_ic_range(self):
        assert INVALID_FITNESS < -1.0
