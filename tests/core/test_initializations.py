"""Tests for the starting alphas of Section 5.2."""

import numpy as np
import pytest

from repro.core import (
    AlphaEvaluator,
    INITIALIZATION_NAMES,
    domain_expert_alpha,
    get_initialization,
    neural_network_alpha,
    noop_alpha,
    prune_program,
    random_alpha,
)
from repro.errors import ConfigurationError


class TestFactories:
    def test_all_codes_buildable(self, dims):
        for code in INITIALIZATION_NAMES:
            program = get_initialization(code, dims, seed=0)
            program.validate()

    def test_unknown_code_rejected(self, dims):
        with pytest.raises(ConfigurationError):
            get_initialization("XYZ", dims)

    def test_lowercase_codes_accepted(self, dims):
        assert get_initialization("nn", dims).name == "alpha_NN"

    def test_random_alpha_deterministic_per_seed(self, dims):
        assert random_alpha(dims, seed=5) == random_alpha(dims, seed=5)
        assert random_alpha(dims, seed=5) != random_alpha(dims, seed=6)

    def test_invalid_nn_learning_rate(self, dims):
        with pytest.raises(ConfigurationError):
            neural_network_alpha(dims, learning_rate=0.0)

    def test_none_are_redundant(self, dims):
        for code in ("D", "NOOP", "NN"):
            program = get_initialization(code, dims)
            assert not prune_program(program).is_redundant, code


class TestBehaviour:
    def test_domain_expert_is_a_formulaic_alpha(self, dims):
        """The expert alpha has no parameters: pruning drops Setup and Update."""
        pruned = prune_program(domain_expert_alpha(dims)).program
        assert pruned.setup == []
        assert pruned.update == []

    def test_noop_alpha_predicts_a_raw_feature(self, small_taskset, dims):
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        predictions = evaluator.run(noop_alpha(dims), splits=("valid",))["valid"]
        expected = small_taskset.split_features("valid")[:, :, 0, -1]
        np.testing.assert_allclose(predictions, expected)

    def test_neural_network_alpha_trains(self, small_taskset, dims):
        """The NN alpha's SGD update must actually move the prediction."""
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=60)
        trained = evaluator.run(neural_network_alpha(dims), splits=("valid",),
                                use_update=True)["valid"]
        frozen = evaluator.run(neural_network_alpha(dims), splits=("valid",),
                               use_update=False)["valid"]
        assert not np.allclose(trained, frozen)

    def test_neural_network_alpha_produces_finite_predictions(self, small_taskset, dims):
        evaluator = AlphaEvaluator(small_taskset, seed=1, max_train_steps=60)
        result = evaluator.evaluate(neural_network_alpha(dims))
        assert np.isfinite(result.predictions["valid"]).all()

    def test_expert_alpha_beats_noop_on_synthetic_market(self, small_taskset, dims):
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=60)
        expert = evaluator.evaluate(domain_expert_alpha(dims))
        noop = evaluator.evaluate(noop_alpha(dims))
        assert expert.ic_valid > noop.ic_valid - 0.05
