"""Tests for the vectorised alpha evaluator."""

import numpy as np
import pytest

from repro.config import AddressSpace
from repro.core import (
    AlphaEvaluator,
    AlphaProgram,
    Dimensions,
    INPUT_MATRIX,
    LABEL,
    Operand,
    Operation,
    PREDICTION,
    domain_expert_alpha,
    neural_network_alpha,
)
from repro.core.fitness import INVALID_FITNESS
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset
from repro.errors import ExecutionError


def extraction_alpha(row=11, col=-1, window=13):
    """Predict with a single extracted feature (deterministic, no parameters)."""
    col = window - 1 if col == -1 else col
    return AlphaProgram(
        setup=[Operation.make("s_const", (), Operand.scalar(2), {"constant": 0.0})],
        predict=[Operation.make("get_scalar", (INPUT_MATRIX,), PREDICTION,
                                {"row": row, "col": col})],
        update=[Operation.make("s_const", (), Operand.scalar(3), {"constant": 0.0})],
        name="extract",
    )


def label_memory_alpha():
    """Predict the running sum of past labels (a pure parameter alpha).

    Uses m0 in a way that does not change the prediction (adds 0 * norm(m0))
    so the program is not pruned as redundant.
    """
    s2, s3, s4, s5 = (Operand.scalar(i) for i in (2, 3, 4, 5))
    return AlphaProgram(
        setup=[Operation.make("s_const", (), s4, {"constant": 0.0})],
        predict=[
            Operation.make("m_norm", (INPUT_MATRIX,), s3),
            Operation.make("s_mul", (s3, s4), s5),        # 0 * norm(m0)
            Operation.make("s_add", (s2, s5), PREDICTION),
        ],
        update=[Operation.make("s_add", (s2, LABEL), s2)],
        name="label_memory",
    )


class TestEvaluatorBasics:
    def test_requires_square_features(self):
        panel = SyntheticMarket(MarketConfig(num_stocks=12, num_days=160), seed=5).generate()
        taskset = build_taskset(panel, window=7, split=Split(train=60, valid=20, test=20),
                                universe_filter=None)
        with pytest.raises(ExecutionError):
            AlphaEvaluator(taskset)

    def test_run_shapes(self, small_taskset, evaluator):
        predictions = evaluator.run(extraction_alpha(), splits=("train", "valid", "test"))
        assert predictions["train"].shape == (small_taskset.split.train,
                                              small_taskset.num_tasks)
        assert predictions["valid"].shape == (small_taskset.split.valid,
                                              small_taskset.num_tasks)
        assert predictions["test"].shape == (small_taskset.split.test,
                                             small_taskset.num_tasks)

    def test_extraction_alpha_reproduces_feature(self, small_taskset, evaluator):
        predictions = evaluator.run(extraction_alpha(), splits=("valid",))["valid"]
        expected = small_taskset.split_features("valid")[:, :, 11, -1]
        np.testing.assert_allclose(predictions, expected)

    def test_deterministic_across_calls(self, small_taskset):
        program = neural_network_alpha(Dimensions(13, 13))
        a = AlphaEvaluator(small_taskset, seed=3, max_train_steps=30).evaluate(program)
        b = AlphaEvaluator(small_taskset, seed=3, max_train_steps=30).evaluate(program)
        np.testing.assert_allclose(a.ic_valid, b.ic_valid)
        np.testing.assert_allclose(a.predictions["valid"], b.predictions["valid"])

    def test_different_seed_changes_stochastic_alphas(self, small_taskset):
        program = neural_network_alpha(Dimensions(13, 13))
        a = AlphaEvaluator(small_taskset, seed=1, max_train_steps=30).evaluate(program)
        b = AlphaEvaluator(small_taskset, seed=2, max_train_steps=30).evaluate(program)
        assert not np.allclose(a.predictions["valid"], b.predictions["valid"])

    def test_max_train_steps_subsamples(self, small_taskset):
        fast = AlphaEvaluator(small_taskset, seed=0, max_train_steps=10)
        assert len(fast.train_day_indices()) == 10
        full = AlphaEvaluator(small_taskset, seed=0)
        assert len(full.train_day_indices()) == small_taskset.split.train

    def test_invalid_program_raises(self, evaluator):
        program = extraction_alpha()
        program.predict.append(
            Operation.make("s_abs", (Operand.scalar(2),), Operand.scalar(9))
        )
        evaluator.address_space = AddressSpace(num_scalars=5, num_vectors=2, num_matrices=1)
        with pytest.raises(Exception):
            evaluator.run(program)


class TestTrainingAndParameters:
    def test_parameters_carry_into_inference(self, small_taskset):
        """The label-memory alpha predicts a constant (per stock) at inference:
        the accumulated training labels — i.e. a real parameter."""
        evaluator = AlphaEvaluator(small_taskset, seed=0)
        predictions = evaluator.run(label_memory_alpha(), splits=("valid",))["valid"]
        train_labels = small_taskset.split_labels("train")
        expected = train_labels.sum(axis=0)
        np.testing.assert_allclose(predictions[0], expected, rtol=1e-9)
        # Update() does not run at inference, so the parameter stays frozen at
        # its end-of-training value for every inference day.
        np.testing.assert_allclose(predictions[-1], expected, rtol=1e-9)

    def test_use_update_false_freezes_parameters(self, small_taskset):
        evaluator = AlphaEvaluator(small_taskset, seed=0)
        frozen = evaluator.run(label_memory_alpha(), splits=("valid",), use_update=False)
        # Without Update() the accumulator never moves: predictions stay zero.
        np.testing.assert_allclose(frozen["valid"], 0.0)

    def test_ablation_changes_ic_for_parameter_alpha(self, small_taskset):
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=60)
        with_update = evaluator.evaluate(label_memory_alpha(), use_update=True)
        without_update = evaluator.evaluate(label_memory_alpha(), use_update=False)
        assert with_update.is_valid
        # Freezing the parameter makes the prediction constant and invalid.
        assert not without_update.is_valid


class TestEvaluate:
    def test_domain_expert_alpha_has_positive_ic(self, small_taskset):
        evaluator = AlphaEvaluator(small_taskset, seed=0)
        result = evaluator.evaluate(domain_expert_alpha(Dimensions(13, 13)))
        assert result.is_valid
        assert result.ic_valid > 0.0
        assert result.fitness == result.ic_valid
        assert not np.isnan(result.ic_test)

    def test_degenerate_alpha_flagged_invalid(self, evaluator):
        program = AlphaProgram(
            setup=[Operation.make("s_const", (), Operand.scalar(2), {"constant": 1.0})],
            predict=[Operation.make("s_abs", (Operand.scalar(2),), PREDICTION)],
            update=[Operation.make("s_const", (), Operand.scalar(3), {"constant": 0.0})],
        )
        result = evaluator.evaluate(program)
        assert not result.is_valid
        assert result.fitness == INVALID_FITNESS

    def test_report_round_trip(self, small_taskset):
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=30)
        result = evaluator.evaluate(domain_expert_alpha(Dimensions(13, 13)))
        report = result.report
        assert report.fitness == result.fitness
        assert report.is_valid == result.is_valid

    def test_evaluate_without_test_split(self, small_taskset):
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=30,
                                   evaluate_test=False)
        result = evaluator.evaluate(domain_expert_alpha(Dimensions(13, 13)))
        assert np.isnan(result.ic_test)
        assert "test" not in result.predictions
