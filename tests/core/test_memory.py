"""Tests for operand addressing and the vectorised memory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AddressSpace
from repro.core import INPUT_MATRIX, LABEL, Memory, Operand, OperandType, PREDICTION
from repro.errors import OperandError


class TestOperand:
    def test_names(self):
        assert Operand.scalar(3).name == "s3"
        assert Operand.vector(7).name == "v7"
        assert Operand.matrix(0).name == "m0"

    def test_parse_roundtrip(self):
        for name in ("s0", "s9", "v15", "m3"):
            assert Operand.parse(name).name == name

    def test_parse_case_insensitive(self):
        assert Operand.parse("S2") == Operand.scalar(2)

    def test_parse_invalid(self):
        for bad in ("x3", "s", "3s", "", "sx"):
            with pytest.raises(OperandError):
                Operand.parse(bad)

    def test_negative_index_rejected(self):
        with pytest.raises(OperandError):
            Operand.scalar(-1)

    def test_reserved_operands(self):
        assert LABEL == Operand.scalar(0)
        assert PREDICTION == Operand.scalar(1)
        assert INPUT_MATRIX == Operand.matrix(0)

    def test_ordering_and_hash(self):
        assert Operand.scalar(1) < Operand.scalar(2)
        assert len({Operand.scalar(1), Operand.scalar(1)}) == 1

    @given(st.sampled_from(list(OperandType)), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_parse_name_roundtrip_property(self, operand_type, index):
        operand = Operand(operand_type, index)
        assert Operand.parse(operand.name) == operand


class TestMemory:
    def make(self, num_tasks=5, num_features=4, window=4):
        return Memory(num_tasks, num_features, window)

    def test_shapes(self):
        memory = self.make()
        assert memory.read(Operand.scalar(0)).shape == (5,)
        assert memory.read(Operand.vector(0)).shape == (5, 4)
        assert memory.read(Operand.matrix(0)).shape == (5, 4, 4)

    def test_write_and_read(self):
        memory = self.make()
        memory.write(Operand.scalar(2), np.arange(5))
        np.testing.assert_allclose(memory.read(Operand.scalar(2)), np.arange(5))

    def test_write_broadcast_scalar(self):
        memory = self.make()
        memory.write(Operand.vector(1), 3.0)
        np.testing.assert_allclose(memory.read(Operand.vector(1)), 3.0)

    def test_write_wrong_shape_rejected(self):
        memory = self.make()
        with pytest.raises(OperandError):
            memory.write(Operand.vector(0), np.zeros((5, 9)))

    def test_out_of_range_operand_rejected(self):
        memory = self.make()
        with pytest.raises(OperandError):
            memory.read(Operand.scalar(99))
        with pytest.raises(OperandError):
            memory.write(Operand.matrix(50), 0.0)

    def test_reset(self):
        memory = self.make()
        memory.write(Operand.scalar(3), 5.0)
        memory.reset()
        np.testing.assert_allclose(memory.read(Operand.scalar(3)), 0.0)

    def test_copy_is_independent(self):
        memory = self.make()
        memory.write(Operand.scalar(2), 1.0)
        clone = memory.copy()
        memory.write(Operand.scalar(2), 9.0)
        np.testing.assert_allclose(clone.read(Operand.scalar(2)), 1.0)

    def test_all_operands_count(self):
        memory = self.make()
        space = memory.address_space
        expected = space.num_scalars + space.num_vectors + space.num_matrices
        assert len(memory.all_operands()) == expected

    def test_invalid_dimensions(self):
        with pytest.raises(OperandError):
            Memory(0, 4, 4)
        with pytest.raises(OperandError):
            Memory(5, 0, 4)

    def test_custom_address_space(self):
        memory = Memory(3, 4, 4, AddressSpace(num_scalars=2, num_vectors=1, num_matrices=1))
        assert memory.scalars.shape == (2, 3)
        with pytest.raises(OperandError):
            memory.read(Operand.scalar(2))


class TestAddressSpace:
    def test_defaults_match_paper(self):
        space = AddressSpace()
        assert (space.num_scalars, space.num_vectors, space.num_matrices) == (10, 16, 4)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            AddressSpace(num_scalars=1)
        with pytest.raises(ValueError):
            AddressSpace(num_matrices=0)
