"""Tests for the multi-round weakly-correlated mining session."""

import numpy as np
import pytest

from repro.core import (
    EvolutionConfig,
    MiningSession,
    domain_expert_alpha,
    prune_program,
)
from repro.errors import EvolutionError


@pytest.fixture()
def session(small_taskset):
    return MiningSession(
        small_taskset,
        evolution_config=EvolutionConfig(population_size=10, tournament_size=4,
                                         max_candidates=80),
        long_k=5,
        short_k=5,
        max_train_steps=20,
        seed=11,
    )


class TestEvaluateAlpha:
    def test_fixed_alpha_metrics(self, session, dims):
        mined = session.evaluate_alpha(domain_expert_alpha(dims), name="alpha_D_0")
        assert mined.name == "alpha_D_0"
        assert np.isfinite(mined.sharpe)
        assert np.isfinite(mined.ic)
        assert mined.valid_returns.shape == (session.taskset.split.valid,)
        assert np.isnan(mined.correlation_with_accepted)

    def test_use_update_flag_forwarded(self, session, dims):
        with_update = session.evaluate_alpha(domain_expert_alpha(dims), use_update=True)
        without_update = session.evaluate_alpha(domain_expert_alpha(dims), use_update=False)
        # The expert alpha has no parameters, so the ablation changes nothing.
        assert with_update.ic == pytest.approx(without_update.ic)

    def test_row_format(self, session, dims):
        row = session.evaluate_alpha(domain_expert_alpha(dims), name="x").row()
        assert set(row) == {"alpha", "sharpe", "ic", "correlation"}


class TestSearch:
    def test_search_improves_or_matches_initial(self, session, dims):
        initial = session.evaluate_alpha(domain_expert_alpha(dims), name="alpha_D_0")
        mined = session.search(domain_expert_alpha(dims), name="alpha_AE_D_0",
                               enforce_cutoff=False)
        assert mined.name == "alpha_AE_D_0"
        assert mined.extras["valid_ic"] >= initial.extras.get("valid_ic", -1.0) - 0.05
        assert mined.extras["searched_alphas"] == 80
        assert mined.evolution is not None

    def test_accept_and_cutoff_reference(self, session, dims):
        first = session.search(domain_expert_alpha(dims), name="alpha_AE_D_0",
                               enforce_cutoff=False)
        session.accept(first)
        assert session.accepted_programs() == [first.program]
        second = session.search(domain_expert_alpha(dims), name="alpha_AE_D_1",
                                enforce_cutoff=True)
        # The correlation of the accepted alpha with itself is 1, so the new
        # alpha must have been checked against it.
        assert not np.isnan(second.correlation_with_accepted)

    def test_accept_requires_valid_returns(self, session, dims):
        mined = session.evaluate_alpha(domain_expert_alpha(dims), name="alpha_D_0")
        mined.valid_returns = np.empty(0)
        with pytest.raises(EvolutionError):
            session.accept(mined)

    def test_describe_accepted(self, session, dims):
        mined = session.evaluate_alpha(domain_expert_alpha(dims), name="alpha_D_0")
        session.accept(mined)
        rows = session.describe_accepted()
        assert rows[0]["alpha"] == "alpha_D_0"

    def test_simplify_delegates_to_pruning(self, dims):
        program = domain_expert_alpha(dims)
        assert MiningSession.simplify(program) == prune_program(program).program

    def test_pruning_ablation_override(self, session, dims):
        mined = session.search(domain_expert_alpha(dims), name="alpha_AE_D_0_N",
                               enforce_cutoff=False, use_pruning=False)
        assert mined.extras["evaluated_alphas"] == mined.extras["searched_alphas"]

    def test_use_pruning_override_keeps_other_config_fields(self, small_taskset, dims):
        """The override rebuild must not drop fields (e.g. num_islands)."""
        session = MiningSession(
            small_taskset,
            evolution_config=EvolutionConfig(population_size=8, tournament_size=3,
                                             max_candidates=40, num_islands=2),
            long_k=5,
            short_k=5,
            max_train_steps=20,
            seed=11,
        )
        mined = session.search(domain_expert_alpha(dims), name="alpha_AE_D_0_N",
                               enforce_cutoff=False, use_pruning=False)
        # Were num_islands dropped by the rebuild, the serial controller
        # would run and report num_islands == 1.
        assert mined.extras["num_islands"] == 2
        assert mined.extras["searched_alphas"] == 40
        assert mined.extras["evaluated_alphas"] == mined.extras["searched_alphas"]

    def test_checkpoint_dir_alone_enables_checkpointing(self, small_taskset, dims,
                                                        tmp_path):
        """--checkpoint without --islands/--workers must not be ignored."""
        import os

        session = MiningSession(
            small_taskset,
            evolution_config=EvolutionConfig(population_size=8, tournament_size=3,
                                             max_candidates=40),
            long_k=5,
            short_k=5,
            max_train_steps=20,
            seed=11,
            checkpoint_dir=str(tmp_path),
        )
        mined = session.search(domain_expert_alpha(dims), name="alpha_AE_D_0",
                               enforce_cutoff=False)
        assert os.path.exists(tmp_path / "alpha_AE_D_0.ckpt")
        assert mined.extras["searched_alphas"] == 40

    def test_island_search_through_session(self, small_taskset, dims):
        session = MiningSession(
            small_taskset,
            evolution_config=EvolutionConfig(population_size=8, tournament_size=3,
                                             max_candidates=40, num_islands=3),
            long_k=5,
            short_k=5,
            max_train_steps=20,
            seed=11,
        )
        first = session.search(domain_expert_alpha(dims), name="alpha_AE_D_0",
                               enforce_cutoff=False)
        session.accept(first)
        # The island controller must honour the accepted-set cutoff too.
        second = session.search(domain_expert_alpha(dims), name="alpha_AE_D_1",
                                enforce_cutoff=True)
        assert first.extras["num_islands"] == 3
        assert not np.isnan(second.correlation_with_accepted)
