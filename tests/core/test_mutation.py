"""Tests for mutation and random-program generation."""

import pytest

from repro.core import (
    ComponentLimits,
    INPUT_MATRIX,
    LABEL,
    MutationConfig,
    Mutator,
    OperandType,
    domain_expert_alpha,
)
from repro.core.ops import OpKind
from repro.errors import EvolutionError


class TestMutationConfig:
    def test_invalid_probability(self):
        with pytest.raises(EvolutionError):
            MutationConfig(mutation_probability=1.5)

    def test_invalid_weights(self):
        with pytest.raises(EvolutionError):
            MutationConfig(randomize_weight=0, insert_weight=0, remove_weight=0)
        with pytest.raises(EvolutionError):
            MutationConfig(randomize_weight=-1)


class TestRandomGeneration:
    def test_random_operand_types(self, mutator):
        for operand_type in OperandType:
            operand = mutator.random_operand(operand_type)
            assert operand.type is operand_type

    def test_random_output_never_label_or_input_matrix(self, mutator):
        for _ in range(200):
            scalar = mutator.random_operand(OperandType.SCALAR, as_output=True)
            matrix = mutator.random_operand(OperandType.MATRIX, as_output=True)
            assert scalar != LABEL
            assert matrix != INPUT_MATRIX

    def test_random_operation_valid_per_component(self, mutator):
        for component in ("setup", "predict", "update"):
            for _ in range(30):
                operation = mutator.random_operation(component)
                assert component in operation.spec.components

    def test_random_program_respects_limits(self, dims):
        limits = ComponentLimits(max_setup_ops=3, max_predict_ops=4, max_update_ops=5)
        mutator = Mutator(dims, limits=limits, seed=1)
        program = mutator.random_program(num_setup=10, num_predict=10, num_update=10)
        assert len(program.setup) <= 3
        assert len(program.predict) <= 4
        assert len(program.update) <= 5

    def test_random_program_is_valid(self, mutator):
        for _ in range(10):
            mutator.random_program().validate()

    def test_empty_program_writes_prediction(self, mutator):
        program = mutator.empty_program()
        assert any(op.output.name == "s1" for op in program.predict)

    def test_relation_ops_can_be_disabled(self, dims):
        config = MutationConfig(allow_relation_ops=False)
        mutator = Mutator(dims, config=config, seed=3)
        ops = mutator._ops_by_component["predict"]
        assert all(spec.kind is not OpKind.RELATION for spec in ops)

    def test_determinism_given_seed(self, dims):
        a = Mutator(dims, seed=11).random_program()
        b = Mutator(dims, seed=11).random_program()
        assert a == b


class TestMutate:
    def test_parent_never_modified(self, mutator, dims):
        parent = domain_expert_alpha(dims)
        rendering = parent.render()
        for _ in range(50):
            mutator.mutate(parent)
        assert parent.render() == rendering

    def test_zero_probability_returns_copy(self, dims):
        mutator = Mutator(dims, config=MutationConfig(mutation_probability=0.0), seed=0)
        parent = domain_expert_alpha(dims)
        child = mutator.mutate(parent)
        assert child == parent
        assert child is not parent

    def test_children_eventually_differ(self, mutator, dims):
        parent = domain_expert_alpha(dims)
        assert any(mutator.mutate(parent) != parent for _ in range(20))

    def test_children_are_always_valid(self, mutator, dims):
        program = domain_expert_alpha(dims)
        for _ in range(200):
            program = mutator.mutate(program)
            program.validate(mutator.address_space, mutator.limits)

    def test_component_sizes_stay_within_limits(self, dims):
        limits = ComponentLimits(max_setup_ops=4, max_predict_ops=6, max_update_ops=6)
        mutator = Mutator(dims, limits=limits, seed=5)
        program = domain_expert_alpha(dims)
        for _ in range(300):
            program = mutator.mutate(program)
        assert len(program.setup) <= 4
        assert len(program.predict) <= 6
        assert len(program.update) <= 6
        for component in ("setup", "predict", "update"):
            assert len(program.component(component)) >= limits.min_ops

    def test_insert_and_remove_change_length(self, dims):
        mutator = Mutator(
            dims,
            config=MutationConfig(randomize_weight=0.0, insert_weight=1.0,
                                  remove_weight=0.0),
            seed=2,
        )
        parent = domain_expert_alpha(dims)
        child = mutator.mutate(parent)
        assert child.num_operations == parent.num_operations + 1

        remover = Mutator(
            dims,
            config=MutationConfig(randomize_weight=0.0, insert_weight=0.0,
                                  remove_weight=1.0),
            seed=2,
        )
        shrunk = remover.mutate(parent)
        assert shrunk.num_operations == parent.num_operations - 1

    def test_mutate_keeps_name_or_renames(self, mutator, dims):
        parent = domain_expert_alpha(dims)
        child = mutator.mutate(parent, name="alpha_child")
        assert child.name == "alpha_child"
        child_default = mutator.mutate(parent)
        assert child_default.name == parent.name
