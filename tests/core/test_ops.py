"""Tests for the operator registry and the operator implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Dimensions, ExecutionContext, OperandType, OpKind, get_op, list_ops
from repro.core.ops import CLIP_VALUE, OP_REGISTRY, sample_params, sanitize
from repro.errors import OperatorError


def make_context(num_tasks=6, num_features=4, window=4, seed=0):
    sectors = np.array([0, 0, 0, 1, 1, 1])[:num_tasks]
    industries = np.array([0, 0, 1, 2, 2, 3])[:num_tasks]
    return ExecutionContext(
        num_tasks=num_tasks,
        num_features=num_features,
        window=window,
        sector_index=sectors,
        industry_index=industries,
        rng=np.random.default_rng(seed),
    )


class TestRegistry:
    def test_known_operators_present(self):
        for name in ("s_add", "s_div", "v_dot", "matmul", "transpose", "get_scalar",
                     "rank", "relation_rank", "relation_demean", "relation_mean",
                     "vector_uniform", "ts_rank"):
            assert name in OP_REGISTRY

    def test_get_unknown_raises(self):
        with pytest.raises(OperatorError):
            get_op("does_not_exist")

    def test_list_by_kind(self):
        relations = list_ops(kind=OpKind.RELATION)
        assert {spec.name for spec in relations} >= {"rank", "relation_rank",
                                                     "relation_demean"}

    def test_list_by_output_type(self):
        scalar_ops = list_ops(output_type=OperandType.SCALAR)
        assert all(spec.output_type is OperandType.SCALAR for spec in scalar_ops)

    def test_relation_ops_not_allowed_in_setup(self):
        setup_ops = {spec.name for spec in list_ops(component="setup")}
        assert "rank" not in setup_ops
        assert "relation_demean" not in setup_ops

    def test_arity_matches_input_types(self):
        for spec in OP_REGISTRY.values():
            assert spec.arity == len(spec.input_types)

    def test_wrong_arity_call_rejected(self):
        ctx = make_context()
        with pytest.raises(OperatorError):
            get_op("s_add")(ctx, (np.zeros(6),), {})


class TestSanitize:
    def test_replaces_non_finite(self):
        values = np.array([np.nan, np.inf, -np.inf, 1.0])
        cleaned = sanitize(values)
        assert np.isfinite(cleaned).all()
        assert cleaned[0] == 0.0
        assert cleaned[1] == CLIP_VALUE
        assert cleaned[2] == -CLIP_VALUE

    @given(st.floats(allow_nan=True, allow_infinity=True))
    @settings(max_examples=50, deadline=None)
    def test_always_bounded(self, value):
        cleaned = sanitize(np.array([value]))
        assert np.abs(cleaned).max() <= CLIP_VALUE


class TestScalarOps:
    def test_arithmetic(self):
        ctx = make_context()
        a, b = np.full(6, 6.0), np.full(6, 3.0)
        assert (get_op("s_add")(ctx, (a, b), {}) == 9).all()
        assert (get_op("s_sub")(ctx, (a, b), {}) == 3).all()
        assert (get_op("s_mul")(ctx, (a, b), {}) == 18).all()
        assert (get_op("s_div")(ctx, (a, b), {}) == 2).all()

    def test_protected_division_by_zero(self):
        ctx = make_context()
        result = get_op("s_div")(ctx, (np.ones(6), np.zeros(6)), {})
        assert np.isfinite(result).all()

    def test_protected_log_and_arcsin(self):
        ctx = make_context()
        assert np.isfinite(get_op("s_log")(ctx, (np.zeros(6),), {})).all()
        assert np.isfinite(get_op("s_arcsin")(ctx, (np.full(6, 5.0),), {})).all()

    def test_exp_is_clipped(self):
        ctx = make_context()
        result = get_op("s_exp")(ctx, (np.full(6, 1e4),), {})
        assert np.abs(result).max() <= CLIP_VALUE

    def test_heaviside(self):
        ctx = make_context()
        result = get_op("s_heaviside")(ctx, (np.array([-1.0, 0.0, 2.0, 3.0, -5.0, 0.1]),), {})
        np.testing.assert_allclose(result, [0, 1, 1, 1, 0, 1])

    def test_const(self):
        ctx = make_context()
        result = get_op("s_const")(ctx, (), {"constant": 2.5})
        np.testing.assert_allclose(result, 2.5)


class TestVectorOps:
    def test_dot_and_norm(self, rng):
        ctx = make_context()
        a = rng.normal(size=(6, 4))
        b = rng.normal(size=(6, 4))
        np.testing.assert_allclose(
            get_op("v_dot")(ctx, (a, b), {}), np.sum(a * b, axis=1), rtol=1e-9
        )
        np.testing.assert_allclose(
            get_op("v_norm")(ctx, (a,), {}), np.linalg.norm(a, axis=1), rtol=1e-9
        )

    def test_scale_and_broadcast(self, rng):
        ctx = make_context()
        scalar = rng.normal(size=6)
        vector = rng.normal(size=(6, 4))
        np.testing.assert_allclose(
            get_op("v_scale")(ctx, (scalar, vector), {}), scalar[:, None] * vector
        )
        broadcast = get_op("v_broadcast")(ctx, (scalar,), {})
        assert broadcast.shape == (6, 4)
        np.testing.assert_allclose(broadcast[:, 0], scalar)

    def test_outer_shape(self, rng):
        ctx = make_context()
        a = rng.normal(size=(6, 4))
        b = rng.normal(size=(6, 4))
        outer = get_op("v_outer")(ctx, (a, b), {})
        assert outer.shape == (6, 4, 4)
        np.testing.assert_allclose(outer[2], np.outer(a[2], b[2]))

    def test_ts_rank_extremes(self):
        ctx = make_context()
        ascending = np.tile(np.arange(4.0), (6, 1))
        result = get_op("ts_rank")(ctx, (ascending,), {})
        np.testing.assert_allclose(result, 1.0)
        descending = ascending[:, ::-1].copy()
        np.testing.assert_allclose(get_op("ts_rank")(ctx, (descending,), {}), 0.0)

    def test_vector_uniform_bounds_and_determinism(self):
        params = {"low": -0.5, "high": 0.5}
        a = get_op("vector_uniform")(make_context(seed=1), (), params)
        b = get_op("vector_uniform")(make_context(seed=1), (), params)
        assert a.shape == (6, 4)
        assert np.abs(a).max() <= 0.5 + 1e-6
        np.testing.assert_allclose(a, b)

    def test_statistics(self, rng):
        ctx = make_context()
        v = rng.normal(size=(6, 4))
        np.testing.assert_allclose(get_op("v_mean")(ctx, (v,), {}), v.mean(axis=1))
        np.testing.assert_allclose(get_op("v_std")(ctx, (v,), {}), v.std(axis=1))
        np.testing.assert_allclose(get_op("v_sum")(ctx, (v,), {}), v.sum(axis=1))


class TestMatrixOps:
    def test_matmul_and_transpose(self, rng):
        ctx = make_context()
        a = rng.normal(size=(6, 4, 4))
        b = rng.normal(size=(6, 4, 4))
        np.testing.assert_allclose(get_op("matmul")(ctx, (a, b), {}), a @ b, rtol=1e-9)
        np.testing.assert_allclose(
            get_op("transpose")(ctx, (a,), {}), np.swapaxes(a, 1, 2)
        )

    def test_matvec(self, rng):
        ctx = make_context()
        m = rng.normal(size=(6, 4, 4))
        v = rng.normal(size=(6, 4))
        expected = np.einsum("kfw,kw->kf", m, v)
        np.testing.assert_allclose(get_op("matvec")(ctx, (m, v), {}), expected, rtol=1e-9)

    def test_norm_reductions(self, rng):
        ctx = make_context()
        m = rng.normal(size=(6, 4, 4))
        np.testing.assert_allclose(
            get_op("m_norm")(ctx, (m,), {}), np.linalg.norm(m, axis=(1, 2)), rtol=1e-9
        )
        by_axis0 = get_op("m_norm_axis")(ctx, (m,), {"axis": 0})
        assert by_axis0.shape == (6, 4)

    def test_mean_std_axis(self, rng):
        ctx = make_context()
        m = rng.normal(size=(6, 4, 4))
        np.testing.assert_allclose(
            get_op("m_mean_axis")(ctx, (m,), {"axis": 0}), m.mean(axis=1)
        )
        np.testing.assert_allclose(
            get_op("m_std_axis")(ctx, (m,), {"axis": 1}), m.std(axis=2)
        )

    def test_broadcast_vector(self, rng):
        ctx = make_context()
        v = rng.normal(size=(6, 4))
        rows = get_op("m_broadcast")(ctx, (v,), {"axis": 0})
        cols = get_op("m_broadcast")(ctx, (v,), {"axis": 1})
        assert rows.shape == (6, 4, 4)
        np.testing.assert_allclose(rows[:, 0, :], v)
        np.testing.assert_allclose(cols[:, :, 0], v)

    def test_matrix_uniform(self):
        result = get_op("matrix_uniform")(make_context(), (), {"low": 0.0, "high": 1.0})
        assert result.shape == (6, 4, 4)
        assert result.min() >= 0.0


class TestExtractionOps:
    def test_get_scalar(self, rng):
        ctx = make_context()
        m = rng.normal(size=(6, 4, 4))
        result = get_op("get_scalar")(ctx, (m,), {"row": 2, "col": 3})
        np.testing.assert_allclose(result, m[:, 2, 3])

    def test_get_row_and_column(self, rng):
        ctx = make_context()
        m = rng.normal(size=(6, 4, 4))
        np.testing.assert_allclose(get_op("get_row")(ctx, (m,), {"row": 1}), m[:, 1, :])
        np.testing.assert_allclose(get_op("get_column")(ctx, (m,), {"col": 2}), m[:, :, 2])

    def test_indices_wrap_around(self, rng):
        ctx = make_context()
        m = rng.normal(size=(6, 4, 4))
        wrapped = get_op("get_scalar")(ctx, (m,), {"row": 6, "col": 7})
        np.testing.assert_allclose(wrapped, m[:, 2, 3])


class TestRelationOps:
    def test_rank_is_normalised(self, rng):
        ctx = make_context()
        values = rng.normal(size=6)
        ranks = get_op("rank")(ctx, (values,), {})
        assert ranks.min() == 0.0 and ranks.max() == 1.0
        assert ranks[np.argmax(values)] == 1.0

    def test_rank_handles_ties(self):
        ctx = make_context()
        ranks = get_op("rank")(ctx, (np.array([1.0, 1.0, 2.0, 2.0, 3.0, 0.0]),), {})
        assert ranks[0] == ranks[1]
        assert ranks[2] == ranks[3]

    def test_relation_rank_within_groups(self):
        ctx = make_context()
        values = np.array([1.0, 2.0, 3.0, 1.0, 5.0, 9.0])
        ranks = get_op("relation_rank")(ctx, (values,), {"level": "sector"})
        # sector 0 = stocks 0..2, sector 1 = stocks 3..5
        assert ranks[2] == 1.0 and ranks[0] == 0.0
        assert ranks[5] == 1.0 and ranks[3] == 0.0

    def test_relation_demean_zero_mean_per_group(self, rng):
        ctx = make_context()
        values = rng.normal(size=6)
        demeaned = get_op("relation_demean")(ctx, (values,), {"level": "industry"})
        for group in np.unique(ctx.industry_index):
            members = ctx.industry_index == group
            np.testing.assert_allclose(demeaned[members].mean(), 0.0, atol=1e-12)

    def test_relation_mean_constant_within_group(self, rng):
        ctx = make_context()
        values = rng.normal(size=6)
        means = get_op("relation_mean")(ctx, (values,), {"level": "sector"})
        for group in np.unique(ctx.sector_index):
            members = ctx.sector_index == group
            assert np.ptp(means[members]) < 1e-12
            np.testing.assert_allclose(means[members][0], values[members].mean())

    def test_demean_plus_mean_identity(self, rng):
        ctx = make_context()
        values = rng.normal(size=6)
        demeaned = get_op("relation_demean")(ctx, (values,), {"level": "industry"})
        means = get_op("relation_mean")(ctx, (values,), {"level": "industry"})
        np.testing.assert_allclose(demeaned + means, values, rtol=1e-9)

    def test_unknown_level_rejected(self):
        ctx = make_context()
        with pytest.raises(OperatorError):
            get_op("relation_rank")(ctx, (np.zeros(6),), {"level": "country"})


class TestParamSampling:
    def test_all_registered_params_samplable(self, rng):
        dims = Dimensions(num_features=13, window=13)
        for spec in OP_REGISTRY.values():
            params = sample_params(spec, dims, rng)
            assert set(params) == set(spec.param_names)

    def test_row_col_within_dims(self, rng):
        dims = Dimensions(num_features=5, window=7)
        spec = get_op("get_scalar")
        for _ in range(50):
            params = sample_params(spec, dims, rng)
            assert 0 <= params["row"] < 5
            assert 0 <= params["col"] < 7

    def test_unknown_param_name_rejected(self, rng):
        from repro.core.ops import _sample_param

        with pytest.raises(OperatorError):
            _sample_param("unknown", Dimensions(3, 3), rng)
