"""Tests for alpha-program representation, validation and serialisation."""

import pytest

from repro.config import AddressSpace
from repro.core import (
    AlphaProgram,
    ComponentLimits,
    Dimensions,
    INPUT_MATRIX,
    Operand,
    Operation,
    PREDICTION,
    domain_expert_alpha,
    neural_network_alpha,
)
from repro.errors import ProgramError


def simple_program():
    return AlphaProgram(
        setup=[Operation.make("s_const", (), Operand.scalar(2), {"constant": 1.0})],
        predict=[
            Operation.make("get_scalar", (INPUT_MATRIX,), Operand.scalar(3),
                           {"row": 0, "col": 0}),
            Operation.make("s_add", (Operand.scalar(3), Operand.scalar(2)), PREDICTION),
        ],
        update=[Operation.make("s_abs", (Operand.scalar(3),), Operand.scalar(4))],
        name="simple",
    )


class TestOperation:
    def test_render_symbol(self):
        operation = Operation.make("s_add", (Operand.scalar(2), Operand.scalar(3)),
                                   Operand.scalar(4))
        assert operation.render() == "s4 = s2 + s3"

    def test_render_function_with_params(self):
        operation = Operation.make("get_scalar", (INPUT_MATRIX,), Operand.scalar(2),
                                   {"row": 1, "col": 2})
        assert operation.render() == "s2 = get_scalar(m0, col=2, row=1)"

    def test_wrong_arity_rejected(self):
        with pytest.raises(ProgramError):
            Operation.make("s_add", (Operand.scalar(2),), Operand.scalar(3))

    def test_wrong_input_type_rejected(self):
        with pytest.raises(ProgramError):
            Operation.make("s_add", (Operand.vector(0), Operand.scalar(1)),
                           Operand.scalar(2))

    def test_wrong_output_type_rejected(self):
        with pytest.raises(ProgramError):
            Operation.make("s_add", (Operand.scalar(2), Operand.scalar(3)),
                           Operand.vector(0))

    def test_missing_params_rejected(self):
        with pytest.raises(ProgramError):
            Operation.make("get_scalar", (INPUT_MATRIX,), Operand.scalar(2), {"row": 0})

    def test_dict_roundtrip(self):
        operation = Operation.make("get_scalar", (INPUT_MATRIX,), Operand.scalar(2),
                                   {"row": 1, "col": 2})
        assert Operation.from_dict(operation.to_dict()) == operation

    def test_operations_hashable(self):
        a = Operation.make("s_abs", (Operand.scalar(2),), Operand.scalar(3))
        b = Operation.make("s_abs", (Operand.scalar(2),), Operand.scalar(3))
        assert a == b
        assert len({a, b}) == 1


class TestAlphaProgram:
    def test_component_access(self):
        program = simple_program()
        assert program.component("predict") is program.predict
        with pytest.raises(ProgramError):
            program.component("train")

    def test_num_operations(self):
        assert simple_program().num_operations == 4

    def test_copy_is_shallow_lists(self):
        program = simple_program()
        clone = program.copy()
        clone.predict.append(
            Operation.make("s_abs", (Operand.scalar(2),), Operand.scalar(5))
        )
        assert program.num_operations == 4
        assert clone.num_operations == 5

    def test_render_contains_components(self):
        text = simple_program().render()
        assert "def Setup():" in text
        assert "def Predict():" in text
        assert "def Update():" in text
        assert "s1 = s3 + s2" in text

    def test_json_roundtrip(self):
        program = simple_program()
        restored = AlphaProgram.from_json(program.to_json())
        assert restored == program
        assert restored.name == "simple"

    def test_equality_and_hash_by_structure(self):
        assert simple_program() == simple_program()
        assert hash(simple_program()) == hash(simple_program())
        other = simple_program()
        other.predict.pop()
        assert other != simple_program()

    def test_validation_passes_for_well_formed(self):
        simple_program().validate()

    def test_validation_rejects_out_of_space_operand(self):
        program = simple_program()
        program.predict.append(
            Operation.make("s_abs", (Operand.scalar(2),), Operand.scalar(9))
        )
        tight = AddressSpace(num_scalars=5, num_vectors=2, num_matrices=1)
        with pytest.raises(ProgramError):
            program.validate(tight)

    def test_validation_rejects_too_many_operations(self):
        program = simple_program()
        limits = ComponentLimits(max_predict_ops=1)
        with pytest.raises(ProgramError):
            program.validate(limits=limits)

    def test_validation_rejects_relation_op_in_setup(self):
        program = simple_program()
        program.setup.append(
            Operation.make("rank", (Operand.scalar(2),), Operand.scalar(3))
        )
        with pytest.raises(ProgramError):
            program.validate()

    def test_component_limits_max_for(self):
        limits = ComponentLimits()
        assert limits.max_for("setup") == 21
        assert limits.max_for("update") == 45
        with pytest.raises(ProgramError):
            limits.max_for("other")


class TestBuiltinAlphas:
    def test_domain_expert_alpha_valid(self):
        program = domain_expert_alpha(Dimensions(13, 13))
        program.validate()
        assert any(op.output == PREDICTION for op in program.predict)

    def test_neural_network_alpha_valid(self):
        program = neural_network_alpha(Dimensions(13, 13))
        program.validate()
        assert len(program.update) >= 5

    def test_serialisation_of_builtin_alphas(self):
        for program in (domain_expert_alpha(Dimensions(13, 13)),
                        neural_network_alpha(Dimensions(13, 13))):
            assert AlphaProgram.from_json(program.to_json()) == program
