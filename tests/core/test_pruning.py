"""Tests for redundancy pruning (Section 4.2)."""

import numpy as np

from repro.core import (
    AlphaEvaluator,
    AlphaProgram,
    INPUT_MATRIX,
    LABEL,
    Operand,
    Operation,
    PREDICTION,
    backward_liveness,
    domain_expert_alpha,
    neural_network_alpha,
    prune_program,
    random_alpha,
)


def op(name, inputs, output, params=None):
    return Operation.make(name, inputs, output, params)


class TestBackwardLiveness:
    def test_marks_only_contributing_operations(self):
        s2, s3, s4 = Operand.scalar(2), Operand.scalar(3), Operand.scalar(4)
        operations = [
            op("s_abs", (s2,), s3),        # contributes
            op("s_abs", (s2,), s4),        # does not
            op("s_abs", (s3,), PREDICTION),
        ]
        needed, live_in = backward_liveness(operations, {PREDICTION})
        assert needed == {0, 2}
        assert s2 in live_in

    def test_overwrite_makes_earlier_write_redundant(self):
        s2 = Operand.scalar(2)
        operations = [
            op("s_abs", (s2,), PREDICTION),   # overwritten later -> redundant
            op("s_sign", (s2,), PREDICTION),
        ]
        needed, _ = backward_liveness(operations, {PREDICTION})
        assert needed == {1}

    def test_empty_targets(self):
        operations = [op("s_abs", (Operand.scalar(2),), Operand.scalar(3))]
        needed, live_in = backward_liveness(operations, set())
        assert needed == set()
        assert live_in == set()


class TestPruneProgram:
    def test_figure5a_redundant_operations_removed(self):
        """Mirrors Figure 5a: overwritten s1 and an unused s8 are pruned."""
        s1, s8, s3 = PREDICTION, Operand.scalar(8), Operand.scalar(3)
        program = AlphaProgram(
            setup=[],
            predict=[
                op("get_scalar", (INPUT_MATRIX,), s3, {"row": 0, "col": 0}),
                op("s_abs", (s3,), s1),          # overwritten below -> redundant
                op("s_abs", (s3,), s8),          # never used -> redundant
                op("s_sign", (s3,), s1),         # the real prediction
            ],
            update=[],
        )
        result = prune_program(program)
        assert not result.is_redundant
        assert result.removed_operations == 2
        assert [operation.render() for operation in result.program.predict] == [
            "s3 = get_scalar(m0, col=0, row=0)",
            "s1 = s_sign(s3)",
        ]

    def test_figure5b_redundant_alpha_detected(self):
        """Mirrors Figure 5b: a prediction that never uses m0 is redundant."""
        program = AlphaProgram(
            setup=[op("s_const", (), Operand.scalar(2), {"constant": 0.3})],
            predict=[op("s_abs", (Operand.scalar(2),), PREDICTION)],
            update=[],
        )
        result = prune_program(program)
        assert result.is_redundant

    def test_no_prediction_write_is_redundant(self):
        program = AlphaProgram(
            setup=[],
            predict=[op("get_scalar", (INPUT_MATRIX,), Operand.scalar(2),
                        {"row": 0, "col": 0})],
            update=[],
        )
        assert prune_program(program).is_redundant

    def test_parameter_chain_through_update_kept(self):
        """An operand produced by Update() from m0 and read by Predict() is a
        parameter; the update operations must survive pruning."""
        s2 = Operand.scalar(2)
        program = AlphaProgram(
            setup=[],
            predict=[op("s_abs", (s2,), PREDICTION)],
            update=[op("m_norm", (INPUT_MATRIX,), s2)],
        )
        result = prune_program(program)
        assert not result.is_redundant
        assert len(result.program.update) == 1

    def test_update_only_chain_without_m0_is_redundant(self):
        s2 = Operand.scalar(2)
        program = AlphaProgram(
            setup=[op("s_const", (), s2, {"constant": 1.0})],
            predict=[op("s_abs", (s2,), PREDICTION)],
            update=[op("s_add", (s2, LABEL), s2)],
        )
        # The prediction depends on the label history but never on m0.
        assert prune_program(program).is_redundant

    def test_recursive_update_chain_kept(self):
        """Update operands feeding each other across time steps are retained."""
        s2, s3 = Operand.scalar(2), Operand.scalar(3)
        program = AlphaProgram(
            setup=[],
            predict=[op("s_abs", (s3,), PREDICTION)],
            update=[
                op("s_add", (s2, s3), s3),                 # s3 <- s2 + s3 (recursive)
                op("m_norm", (INPUT_MATRIX,), s2),          # s2 <- norm(m0)
            ],
        )
        result = prune_program(program)
        assert not result.is_redundant
        assert len(result.program.update) == 2

    def test_domain_expert_alpha_prunes_placeholders(self, dims):
        result = prune_program(domain_expert_alpha(dims))
        assert not result.is_redundant
        assert len(result.program.setup) == 0
        assert len(result.program.update) == 0
        assert len(result.program.predict) == 4

    def test_neural_network_alpha_not_redundant(self, dims):
        result = prune_program(neural_network_alpha(dims))
        assert not result.is_redundant
        # SGD update operations all contribute to the parameters.
        assert len(result.program.update) == 8

    def test_counts_are_consistent(self, dims):
        program = domain_expert_alpha(dims)
        result = prune_program(program)
        assert result.total_operations == program.num_operations
        assert result.kept_operations == result.program.num_operations


class TestPruningEdgeCases:
    """Satellite regression tests: cyclic Update-only writes, Setup-constant
    predictions and idempotence."""

    def test_update_only_write_cycle_pruned(self):
        """Update operands feeding only each other (never Predict) are dead.

        The cross-time-step fixpoint must not be fooled by the cycle
        ``s2 <- s3, s3 <- s2``: neither operand reaches the prediction, so
        the whole cycle is pruned.
        """
        s2, s3 = Operand.scalar(2), Operand.scalar(3)
        program = AlphaProgram(
            setup=[],
            predict=[op("get_scalar", (INPUT_MATRIX,), PREDICTION,
                        {"row": 0, "col": 0})],
            update=[
                op("s_abs", (s3,), s2),
                op("s_abs", (s2,), s3),
            ],
        )
        result = prune_program(program)
        assert not result.is_redundant
        assert len(result.program.update) == 0
        assert result.removed_operations == 2

    def test_update_write_cycle_reaching_predict_kept(self):
        """The same cycle is live once Predict() reads one of its operands."""
        s2, s3 = Operand.scalar(2), Operand.scalar(3)
        program = AlphaProgram(
            setup=[],
            predict=[
                op("get_scalar", (INPUT_MATRIX,), s3, {"row": 0, "col": 0}),
                op("s_add", (s2, s3), PREDICTION),
            ],
            update=[
                op("s_abs", (s3,), s2),
                op("s_abs", (s2,), s3),
            ],
        )
        result = prune_program(program)
        assert not result.is_redundant
        assert len(result.program.update) == 2

    def test_setup_constant_prediction_is_redundant(self):
        """s1 depending solely on Setup() constants must be flagged."""
        s2, s3 = Operand.scalar(2), Operand.scalar(3)
        program = AlphaProgram(
            setup=[
                op("s_const", (), s2, {"constant": 0.5}),
                op("s_const", (), s3, {"constant": -1.5}),
            ],
            predict=[
                op("s_mul", (s2, s3), PREDICTION),
            ],
            update=[],
        )
        result = prune_program(program)
        assert result.is_redundant

    def test_setup_constant_through_update_still_redundant(self):
        """Setup constants recombined by Update() still never touch m0."""
        s2, s3 = Operand.scalar(2), Operand.scalar(3)
        program = AlphaProgram(
            setup=[op("s_const", (), s2, {"constant": 0.5})],
            predict=[op("s_abs", (s3,), PREDICTION)],
            update=[op("s_add", (s2, s2), s3)],
        )
        assert prune_program(program).is_redundant

    def test_prune_is_idempotent(self, dims):
        """prune(prune(p)) == prune(p) for expert, NN and random programs."""
        programs = [domain_expert_alpha(dims), neural_network_alpha(dims)]
        programs += [random_alpha(dims, seed=seed) for seed in range(10)]
        for program in programs:
            once = prune_program(program)
            twice = prune_program(once.program)
            assert twice.program == once.program
            assert twice.removed_operations == 0
            assert twice.is_redundant == once.is_redundant

    def test_idempotent_on_redundant_programs(self):
        program = AlphaProgram(
            setup=[op("s_const", (), Operand.scalar(2), {"constant": 1.0})],
            predict=[op("s_abs", (Operand.scalar(2),), PREDICTION)],
            update=[],
        )
        once = prune_program(program)
        twice = prune_program(once.program)
        assert once.is_redundant and twice.is_redundant
        assert twice.program == once.program


class TestPruningPreservesSemantics:
    def test_pruned_random_programs_have_identical_predictions(self, small_taskset, dims):
        """Pruning must never change what a (non-redundant) alpha predicts."""
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        checked = 0
        for seed in range(60):
            program = random_alpha(dims, seed=seed)
            result = prune_program(program)
            if result.is_redundant:
                continue
            original = evaluator.run(program, splits=("valid",))["valid"]
            pruned = evaluator.run(result.program, splits=("valid",))["valid"]
            np.testing.assert_allclose(original, pruned, rtol=1e-9, atol=1e-12)
            checked += 1
            if checked >= 5:
                break
        assert checked >= 3, "expected at least a few non-redundant random programs"

    def test_pruned_mutated_programs_have_identical_predictions(self, small_taskset, dims,
                                                                mutator):
        """Pruning children of the expert alpha preserves their predictions."""
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        program = domain_expert_alpha(dims)
        checked = 0
        for _ in range(40):
            program = mutator.mutate(program)
            result = prune_program(program)
            if result.is_redundant:
                continue
            original = evaluator.run(program, splits=("valid",))["valid"]
            pruned = evaluator.run(result.program, splits=("valid",))["valid"]
            np.testing.assert_allclose(original, pruned, rtol=1e-9, atol=1e-12)
            checked += 1
        assert checked >= 5

    def test_domain_expert_predictions_unchanged(self, small_taskset, dims):
        program = domain_expert_alpha(dims)
        pruned = prune_program(program).program
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        np.testing.assert_allclose(
            evaluator.run(program, splits=("valid",))["valid"],
            evaluator.run(pruned, splits=("valid",))["valid"],
        )
