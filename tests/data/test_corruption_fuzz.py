"""Property-based corruption harness for the dirty-market repair layer.

The three contracts ``docs/DATA.md`` promises, exercised by seeded
injection into a clean synthetic export (``repro.data.inject_corruption``
is the ground-truth generator, ``audit_directory`` the detector):

(a) **audit exactness** — for every taxonomy class, and for composed
    multi-class workloads, the auditor finds *exactly* the injected
    violation set (compared by ``AuditReport.keys()``);
(b) **repair determinism** — every policy loads a bitwise-identical panel
    across repeated loads of the same dirty directory, and the repaired
    panel survives a CSV → FileBackend round trip bit for bit;
(c) **clean-panel identity** — repairing already-clean data is the
    identity, for every registered policy.
"""

import shutil

import pytest

from repro.data import (
    CORRUPTION_KINDS,
    CorruptionSpec,
    FileBackend,
    MarketConfig,
    SyntheticMarket,
    audit_directory,
    export_panel_csv,
    inject_corruption,
    load_audit_report,
    load_csv_directory,
    panels_bitwise_equal,
    repair_policy_names,
    save_audit_report,
)
from repro.errors import DataIntegrityError

_SECTOR_MAP = "sectors.txt"
_EXCLUDE = (_SECTOR_MAP,)
_NUM_STOCKS = 16
_NUM_DAYS = 120


@pytest.fixture(scope="module")
def clean_source(tmp_path_factory):
    """One clean synthetic export every test copies from (byte-stable)."""
    directory = tmp_path_factory.mktemp("clean") / "panel"
    panel = SyntheticMarket(
        MarketConfig(num_stocks=_NUM_STOCKS, num_days=_NUM_DAYS), seed=5
    ).generate()
    export_panel_csv(panel, directory)
    return directory


def copy_of(clean_source, tmp_path, name="data"):
    target = tmp_path / name
    shutil.copytree(clean_source, target)
    return target


def load(directory, repair=None):
    return load_csv_directory(directory, exclude=_EXCLUDE, repair=repair)


def directory_bytes(directory):
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.glob("*.csv"))
    }


class TestCleanPanel:
    def test_clean_export_audits_clean(self, clean_source):
        report = audit_directory(clean_source, exclude=_EXCLUDE)
        assert report.violations == ()
        assert report.counts() == {}

    @pytest.mark.parametrize("policy", repair_policy_names())
    def test_repairing_clean_data_is_the_identity(self, clean_source, policy):
        baseline = load(clean_source)
        repaired = load(clean_source, repair=policy)
        assert panels_bitwise_equal(repaired, baseline)


class TestInjection:
    def test_injection_is_deterministic(self, clean_source, tmp_path):
        spec = CorruptionSpec(events=2, seed=77)
        first_dir = copy_of(clean_source, tmp_path, "first")
        second_dir = copy_of(clean_source, tmp_path, "second")
        first = inject_corruption(first_dir, spec, exclude=_EXCLUDE)
        second = inject_corruption(second_dir, spec, exclude=_EXCLUDE)
        assert first.keys() == second.keys()
        assert directory_bytes(first_dir) == directory_bytes(second_dir)

    def test_untouched_stocks_keep_their_exact_bytes(self, clean_source,
                                                     tmp_path):
        dirty_dir = copy_of(clean_source, tmp_path)
        before = directory_bytes(clean_source)
        injected = inject_corruption(
            dirty_dir, CorruptionSpec(kinds=("spikes",), events=1, seed=3),
            exclude=_EXCLUDE,
        )
        after = directory_bytes(dirty_dir)
        corrupted = {f"{v.ticker}.csv" for v in injected.violations}
        assert len(corrupted) == 1
        for name, payload in before.items():
            if name not in corrupted:
                assert after[name] == payload

    def test_ground_truth_report_round_trips(self, clean_source, tmp_path):
        dirty_dir = copy_of(clean_source, tmp_path)
        injected = inject_corruption(
            dirty_dir, CorruptionSpec(events=1, seed=9), exclude=_EXCLUDE)
        path = save_audit_report(injected, tmp_path / "truth.json")
        assert load_audit_report(path).keys() == injected.keys()


class TestAuditExactness:
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    @pytest.mark.parametrize("seed", [11, 42])
    def test_single_kind_recovered_exactly(self, clean_source, tmp_path,
                                           kind, seed):
        dirty_dir = copy_of(clean_source, tmp_path)
        injected = inject_corruption(
            dirty_dir, CorruptionSpec(kinds=(kind,), events=2, seed=seed),
            exclude=_EXCLUDE,
        )
        detected = audit_directory(dirty_dir, exclude=_EXCLUDE)
        assert detected.keys() == injected.keys()
        assert detected.counts() == {kind: 2}

    @pytest.mark.parametrize("seed", [7, 42])
    def test_composed_workload_recovered_exactly(self, clean_source,
                                                 tmp_path, seed):
        dirty_dir = copy_of(clean_source, tmp_path)
        spec = CorruptionSpec(kinds=CORRUPTION_KINDS, events=2, seed=seed)
        injected = inject_corruption(dirty_dir, spec, exclude=_EXCLUDE)
        detected = audit_directory(dirty_dir, exclude=_EXCLUDE)
        assert detected.keys() == injected.keys()
        assert detected.counts() == {kind: 2 for kind in CORRUPTION_KINDS}

    def test_split_factor_recovered(self, clean_source, tmp_path):
        dirty_dir = copy_of(clean_source, tmp_path)
        inject_corruption(
            dirty_dir, CorruptionSpec(kinds=("splits",), events=2, seed=1),
            exclude=_EXCLUDE,
        )
        detected = audit_directory(dirty_dir, exclude=_EXCLUDE)
        for violation in detected.for_kind("splits"):
            assert violation.detail["factor"] == 2.0


@pytest.fixture()
def dirty_dir(clean_source, tmp_path):
    """A composed dirty directory (every kind, two events each)."""
    directory = copy_of(clean_source, tmp_path)
    inject_corruption(
        directory, CorruptionSpec(kinds=CORRUPTION_KINDS, events=2, seed=42),
        exclude=_EXCLUDE,
    )
    return directory


# ``strict`` rejects the injected duplicates by design — it gets its own
# structured-rejection test below.
_REPAIRING_POLICIES = [
    name for name in repair_policy_names() if name != "strict"
]


class TestRepairDeterminism:
    @pytest.mark.parametrize("policy", _REPAIRING_POLICIES)
    def test_repeated_loads_are_bitwise_identical(self, dirty_dir, policy):
        first = load(dirty_dir, repair=policy)
        second = load(dirty_dir, repair=policy)
        assert panels_bitwise_equal(first, second)

    @pytest.mark.parametrize("policy", _REPAIRING_POLICIES)
    def test_repaired_panel_survives_csv_round_trip(self, dirty_dir,
                                                    tmp_path, policy):
        repaired = load(dirty_dir, repair=policy)
        out = tmp_path / f"roundtrip-{policy}"
        export_panel_csv(repaired, out)
        back = FileBackend(out, sector_map=out / _SECTOR_MAP).load_panel()
        assert panels_bitwise_equal(back, repaired)

    def test_strict_rejects_with_the_injected_pairs(self, clean_source,
                                                    tmp_path):
        directory = copy_of(clean_source, tmp_path)
        injected = inject_corruption(
            directory,
            CorruptionSpec(kinds=("duplicates",), events=2, seed=42),
            exclude=_EXCLUDE,
        )
        with pytest.raises(DataIntegrityError) as excinfo:
            load(directory)
        assert sorted(excinfo.value.pairs) == sorted(injected.pairs())

    def test_conflicting_duplicates_distinguish_keep_policies(self,
                                                              dirty_dir):
        keep_first = load(dirty_dir, repair="keep-first")
        keep_last = load(dirty_dir, repair="keep-last")
        assert not panels_bitwise_equal(keep_first, keep_last)

    def test_robust_actually_changes_the_dirty_panel(self, dirty_dir):
        minimal = load(dirty_dir, repair="keep-last")
        robust = load(dirty_dir, repair="robust")
        assert not panels_bitwise_equal(minimal, robust)
