"""Tests for the pluggable data-backend layer (repro.data.backends)."""

import importlib.util

import numpy as np
import pytest

from repro.data import (
    DataSpec,
    FileBackend,
    MarketConfig,
    ResampledBackend,
    Split,
    SyntheticBackend,
    SyntheticMarket,
    backend_from_spec,
    backend_kinds,
    build_taskset,
    export_panel_csv,
    panels_bitwise_equal,
    register_backend,
)
from repro.data.backends import _REGISTRY
from repro.errors import DataError


class TestDataSpec:
    def test_defaults(self):
        spec = DataSpec()
        assert spec.kind == "synthetic"
        assert spec.frequency == "daily"

    def test_bad_frequency(self):
        with pytest.raises(DataError, match="frequency"):
            DataSpec(frequency="hourly")

    def test_empty_kind(self):
        with pytest.raises(DataError, match="kind"):
            DataSpec(kind="")

    def test_resampled_copy(self):
        weekly = DataSpec().resampled("weekly")
        assert weekly.frequency == "weekly"
        assert weekly.kind == "synthetic"

    def test_hashable(self):
        assert hash(DataSpec()) == hash(DataSpec())


class TestRegistry:
    def test_builtin_kinds(self):
        assert {"synthetic", "file"} <= set(backend_kinds())

    def test_unknown_kind_lists_alternatives(self):
        with pytest.raises(DataError, match="synthetic"):
            backend_from_spec(DataSpec(kind="nope"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DataError, match="already registered"):
            register_backend("synthetic", lambda spec, mc, seed: None)

    def test_custom_backend_registration(self):
        @register_backend("test-custom")
        def _factory(spec, market_config, seed):
            return SyntheticBackend(MarketConfig(num_stocks=12, num_days=90), seed=1)

        try:
            backend = backend_from_spec(DataSpec(kind="test-custom"))
            assert backend.load_panel().num_stocks == 12
        finally:
            _REGISTRY.pop("test-custom")

    def test_file_kind_requires_path(self):
        with pytest.raises(DataError, match="path"):
            backend_from_spec(DataSpec(kind="file"))

    def test_non_daily_spec_wraps_resampler(self):
        backend = backend_from_spec(
            DataSpec(frequency="weekly"),
            market_config=MarketConfig(num_stocks=10, num_days=120),
            seed=3,
        )
        assert isinstance(backend, ResampledBackend)
        assert backend.frequency == "weekly"


class TestSyntheticBackend:
    def test_bitwise_parity_with_direct_simulator(self):
        config = MarketConfig(num_stocks=20, num_days=150)
        backend = SyntheticBackend(config, seed=11)
        direct = SyntheticMarket(config, seed=11).generate()
        assert panels_bitwise_equal(backend.load_panel(), direct)

    def test_taskset_parity_with_pre_refactor_path(self):
        """The acceptance gate: backend-built task sets == the old path."""
        config = MarketConfig(num_stocks=25, num_days=200)
        split = Split(train=100, valid=25, test=25)
        via_backend = SyntheticBackend(config, seed=9).build_taskset(split=split)
        old_path = build_taskset(
            SyntheticMarket(config, seed=9).generate(), split=split
        )
        assert via_backend.features.tobytes() == old_path.features.tobytes()
        assert via_backend.labels.tobytes() == old_path.labels.tobytes()
        assert np.array_equal(via_backend.dates, old_path.dates)

    def test_cache_key_distinguishes_seed_and_config(self):
        config = MarketConfig(num_stocks=20, num_days=150)
        assert SyntheticBackend(config, 1).cache_key() != SyntheticBackend(config, 2).cache_key()
        assert SyntheticBackend(config, 1).cache_key() == SyntheticBackend(config, 1).cache_key()

    def test_describe_is_jsonable(self):
        import json

        json.dumps(SyntheticBackend(seed=0).describe())


class TestFileBackend:
    @pytest.fixture()
    def exported(self, small_panel, tmp_path):
        export_panel_csv(small_panel, tmp_path)
        return tmp_path

    def test_cache_returns_same_object(self, exported, small_panel):
        backend = FileBackend(exported, sector_map=exported / "sectors.txt")
        first = backend.load_panel()
        assert backend.load_panel() is first
        assert panels_bitwise_equal(first, small_panel)

    def test_cache_invalidated_on_touch(self, exported):
        backend = FileBackend(exported, sector_map=exported / "sectors.txt")
        first = backend.load_panel()
        target = sorted(exported.glob("SYN*.csv"))[0]
        target.write_text(target.read_text())  # same bytes, new mtime
        assert backend.load_panel() is not first

    def test_cache_keeps_one_entry_per_source(self, exported):
        """Reloading after a modification replaces the entry — the cache
        must not strand the previous panel generation in memory."""
        backend = FileBackend(exported, sector_map=exported / "sectors.txt")
        backend.load_panel()
        target = sorted(exported.glob("SYN*.csv"))[0]
        target.write_text(target.read_text())
        backend.load_panel()
        key = backend._source_key()
        assert sum(1 for k in FileBackend._CACHE if k == key) == 1

    def test_missing_sector_map_is_a_data_error(self, exported):
        backend = FileBackend(exported, sector_map=exported / "nope.txt")
        with pytest.raises(DataError, match="sector map"):
            backend.load_panel()

    def test_missing_directory(self, tmp_path):
        with pytest.raises(DataError, match="does not exist"):
            FileBackend(tmp_path / "nope").load_panel()

    def test_empty_directory(self, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        with pytest.raises(DataError, match="no files"):
            FileBackend(tmp_path).load_panel()

    @pytest.mark.skipif(
        importlib.util.find_spec("pyarrow") is not None,
        reason="pyarrow installed; the gate does not apply",
    )
    def test_parquet_gated_on_pyarrow(self, tmp_path):
        (tmp_path / "AAA.parquet").write_bytes(b"not really parquet")
        with pytest.raises(DataError, match="pyarrow"):
            FileBackend(tmp_path, pattern="*.parquet").load_panel()

    def test_validate_rejects_nonfinite_prices(self, small_panel):
        bad = SyntheticMarket(
            MarketConfig(num_stocks=10, num_days=90), seed=2
        ).generate()
        bad.close[5, 3] = np.nan
        with pytest.raises(DataError, match="close"):
            FileBackend.validate_panel(bad)

    def test_validate_rejects_unsorted_dates(self, small_panel):
        panel = SyntheticMarket(
            MarketConfig(num_stocks=10, num_days=90), seed=2
        ).generate()
        panel.dates = panel.dates[::-1].copy()
        with pytest.raises(DataError, match="increasing"):
            FileBackend.validate_panel(panel)


class TestResampledBackend:
    def test_weekly_shape_and_cache_key(self):
        config = MarketConfig(num_stocks=10, num_days=100)
        daily = SyntheticBackend(config, seed=4)
        weekly = ResampledBackend(daily, "weekly")
        panel = weekly.load_panel()
        assert panel.num_days == 20  # 100 synthetic days / 5-day weeks
        assert weekly.cache_key() != daily.cache_key()
        assert weekly.describe()["inner"]["kind"] == "synthetic"

    def test_unknown_frequency(self):
        with pytest.raises(DataError, match="frequency"):
            ResampledBackend(SyntheticBackend(seed=0), "hourly")
