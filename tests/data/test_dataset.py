"""Tests for task-set construction and splitting."""

import numpy as np
import pytest

from repro.data import Split, TaskSet, build_taskset
from repro.data.features import WARMUP_DAYS
from repro.errors import DataError


class TestSplit:
    def test_total(self):
        split = Split(train=10, valid=5, test=5)
        assert split.total == 20

    def test_positive_required(self):
        with pytest.raises(DataError):
            Split(train=0, valid=1, test=1)

    def test_fractional_mirrors_paper_proportions(self):
        split = Split.fractional(1220)
        assert split.total == 1220
        assert split.train > split.valid
        assert abs(split.train - 988) <= 2
        assert abs(split.valid - 116) <= 2

    def test_fractional_small_total(self):
        split = Split.fractional(10)
        assert split.total == 10
        assert min(split.train, split.valid, split.test) >= 1

    def test_fractional_too_small(self):
        with pytest.raises(DataError):
            Split.fractional(2)


class TestBuildTaskset:
    def test_shapes(self, small_taskset):
        assert small_taskset.features.shape == (
            small_taskset.num_samples,
            small_taskset.num_tasks,
            small_taskset.num_features,
            small_taskset.window,
        )
        assert small_taskset.labels.shape == (
            small_taskset.num_samples, small_taskset.num_tasks
        )
        assert small_taskset.num_features == 13
        assert small_taskset.window == 13

    def test_split_views_partition_samples(self, small_taskset):
        total = sum(
            small_taskset.split_features(split).shape[0]
            for split in ("train", "valid", "test")
        )
        assert total == small_taskset.num_samples

    def test_splits_are_chronological(self, small_taskset):
        train_dates = small_taskset.split_dates("train")
        valid_dates = small_taskset.split_dates("valid")
        test_dates = small_taskset.split_dates("test")
        assert train_dates[-1] < valid_dates[0]
        assert valid_dates[-1] < test_dates[0]

    def test_labels_are_next_day_returns(self, small_panel):
        taskset = build_taskset(small_panel, universe_filter=None,
                                split=Split(train=110, valid=30, test=30))
        returns = small_panel.returns()
        # The label of the last test sample must equal the return of the
        # day following the sample's date.
        last_date = int(taskset.dates[-1])
        date_index = int(np.where(small_panel.dates == last_date)[0][0])
        np.testing.assert_allclose(taskset.labels[-1], returns[date_index + 1])

    def test_features_respect_window_alignment(self, small_panel):
        taskset = build_taskset(small_panel, universe_filter=None,
                                split=Split(train=110, valid=30, test=30))
        close_row = 11  # index of the close feature
        # The latest column of the close-price row must be the (normalised)
        # close of the sample date, so consecutive samples shift by one day.
        first = taskset.features[0, 0, close_row, -1]
        second = taskset.features[1, 0, close_row, -2]
        np.testing.assert_allclose(first, second)

    def test_unknown_split_rejected(self, small_taskset):
        with pytest.raises(DataError):
            small_taskset.split_features("holdout")

    def test_too_short_panel_rejected(self, small_panel):
        short = small_panel.select_days(0, 44)
        with pytest.raises(DataError):
            build_taskset(short)

    def test_oversized_split_rejected(self, small_panel):
        with pytest.raises(DataError):
            build_taskset(small_panel, split=Split(train=1000, valid=10, test=10))

    def test_window_must_be_positive(self, small_panel):
        with pytest.raises(DataError):
            build_taskset(small_panel, window=0)

    def test_warmup_excludes_early_days(self, small_taskset, small_panel):
        assert int(small_taskset.dates[0]) >= WARMUP_DAYS

    def test_subset_tasks(self, small_taskset):
        subset = small_taskset.subset_tasks(np.array([0, 2, 4]))
        assert subset.num_tasks == 3
        np.testing.assert_allclose(subset.labels[:, 1], small_taskset.labels[:, 2])
        assert subset.taxonomy.num_stocks == 3

    def test_subset_tasks_empty_rejected(self, small_taskset):
        with pytest.raises(DataError):
            small_taskset.subset_tasks(np.array([], dtype=int))

    def test_describe_contents(self, small_taskset):
        info = small_taskset.describe()
        assert info["num_tasks"] == small_taskset.num_tasks
        assert info["train_days"] == small_taskset.split.train


class TestTaskSetValidation:
    def test_label_shape_mismatch_rejected(self, small_taskset):
        with pytest.raises(DataError):
            TaskSet(
                features=small_taskset.features,
                labels=small_taskset.labels[:, :-1],
                dates=small_taskset.dates,
                taxonomy=small_taskset.taxonomy,
                split=small_taskset.split,
            )

    def test_split_total_mismatch_rejected(self, small_taskset):
        with pytest.raises(DataError):
            TaskSet(
                features=small_taskset.features,
                labels=small_taskset.labels,
                dates=small_taskset.dates,
                taxonomy=small_taskset.taxonomy,
                split=Split(train=5, valid=5, test=5),
            )
