"""Tests for the 13-type feature construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.config import NUM_FEATURES
from repro.data import FEATURE_NAMES, FeaturePanel, compute_feature_panel
from repro.data.features import rolling_mean, rolling_std
from repro.errors import DataError


class TestRollingStatistics:
    def test_rolling_mean_matches_naive(self, rng):
        values = rng.normal(size=(50, 4))
        horizon = 5
        result = rolling_mean(values, horizon)
        for t in range(values.shape[0]):
            start = max(0, t - horizon + 1)
            np.testing.assert_allclose(result[t], values[start:t + 1].mean(axis=0))

    def test_rolling_std_matches_naive(self, rng):
        values = rng.normal(size=(40, 3))
        horizon = 7
        result = rolling_std(values, horizon)
        for t in range(values.shape[0]):
            start = max(0, t - horizon + 1)
            np.testing.assert_allclose(
                result[t], values[start:t + 1].std(axis=0), atol=1e-10
            )

    def test_rolling_mean_horizon_one_is_identity(self, rng):
        values = rng.normal(size=(20, 2))
        np.testing.assert_allclose(rolling_mean(values, 1), values)

    def test_rolling_std_horizon_one_is_zero(self, rng):
        values = rng.normal(size=(20, 2))
        np.testing.assert_allclose(rolling_std(values, 1), 0.0, atol=1e-6)

    def test_invalid_horizon(self):
        with pytest.raises(DataError):
            rolling_mean(np.ones((5, 1)), 0)
        with pytest.raises(DataError):
            rolling_std(np.ones((5, 1)), -2)

    @given(hnp.arrays(np.float64, (25, 2), elements=st.floats(-100, 100)),
           st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_rolling_mean_bounded_by_extremes(self, values, horizon):
        result = rolling_mean(values, horizon)
        assert (result <= values.max() + 1e-9).all()
        assert (result >= values.min() - 1e-9).all()


class TestComputeFeaturePanel:
    def test_shapes_and_names(self, small_panel):
        features = compute_feature_panel(small_panel)
        assert features.num_features == NUM_FEATURES
        assert features.feature_names == FEATURE_NAMES
        assert features.values.shape == (small_panel.num_days, small_panel.num_stocks,
                                         NUM_FEATURES)

    def test_price_columns_match_panel(self, small_panel):
        features = compute_feature_panel(small_panel)
        close_index = FEATURE_NAMES.index("close")
        np.testing.assert_allclose(features.values[:, :, close_index], small_panel.close)
        volume_index = FEATURE_NAMES.index("volume")
        np.testing.assert_allclose(features.values[:, :, volume_index], small_panel.volume)

    def test_ma_columns_are_smoother_than_close(self, small_panel):
        features = compute_feature_panel(small_panel)
        close_index = FEATURE_NAMES.index("close")
        ma30_index = FEATURE_NAMES.index("ma30")
        close_changes = np.abs(np.diff(features.values[30:, :, close_index], axis=0)).mean()
        ma_changes = np.abs(np.diff(features.values[30:, :, ma30_index], axis=0)).mean()
        assert ma_changes < close_changes

    def test_all_finite(self, small_panel):
        features = compute_feature_panel(small_panel)
        assert np.isfinite(features.values).all()


class TestNormalization:
    def test_normalized_bounded_on_fit_region(self, small_panel):
        features = compute_feature_panel(small_panel)
        normalized = features.normalized()
        assert np.abs(normalized.values).max() <= 1.0 + 1e-9

    def test_normalized_with_fit_days_keeps_future_unscaled_by_future_max(self, small_panel):
        features = compute_feature_panel(small_panel)
        normalized = features.normalized(fit_days=100)
        # On the fit region values must lie in [-1, 1]; afterwards they may exceed 1.
        assert np.abs(normalized.values[:100]).max() <= 1.0 + 1e-9

    def test_normalization_is_per_stock(self, small_panel):
        features = compute_feature_panel(small_panel)
        normalized = features.normalized()
        close_index = FEATURE_NAMES.index("close")
        per_stock_max = np.abs(normalized.values[:, :, close_index]).max(axis=0)
        np.testing.assert_allclose(per_stock_max, 1.0, rtol=1e-9)

    def test_zero_feature_does_not_divide_by_zero(self):
        values = np.zeros((10, 2, 3))
        panel = FeaturePanel(values=values, feature_names=("a", "b", "c"),
                             dates=np.arange(10))
        normalized = panel.normalized()
        assert np.isfinite(normalized.values).all()

    def test_invalid_fit_days(self, small_panel):
        features = compute_feature_panel(small_panel)
        with pytest.raises(DataError):
            features.normalized(fit_days=0)


class TestFeaturePanelValidation:
    def test_wrong_rank_rejected(self):
        with pytest.raises(DataError):
            FeaturePanel(values=np.zeros((5, 3)), feature_names=("a",), dates=np.arange(5))

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(DataError):
            FeaturePanel(values=np.zeros((5, 3, 2)), feature_names=("a",),
                         dates=np.arange(5))
