"""FileBackend edge cases: gaps, NaNs, unsorted rows, membership, round-trip.

The satellite suite the data layer promises in docs/DATA.md: whatever shape
real per-stock CSV files arrive in — missing days, blank prices, shuffled
rows, stocks that only trade part of the calendar — the loaded panel is
dense, sorted and aligned, and a synthetic panel survives the full
synthetic → CSV → FileBackend round trip bit for bit.
"""

import numpy as np
import pytest

from repro.data import (
    FileBackend,
    MarketConfig,
    SyntheticMarket,
    UniverseFilter,
    build_taskset,
    export_panel_csv,
    panels_bitwise_equal,
)
from repro.errors import DataError


def write_csv(path, rows):
    """rows: list of (date, open, high, low, close, volume) tuples."""
    lines = ["date,open,high,low,close,volume"]
    for row in rows:
        lines.append(",".join(str(value) for value in row))
    path.write_text("\n".join(lines) + "\n")


def steady_rows(days, price=50.0, volume=1000.0, skip=()):
    rows = []
    for day in days:
        if day in skip:
            continue
        rows.append((20200100 + day, price, price * 1.01, price * 0.99, price, volume))
    return rows


class TestRoundTrip:
    def test_synthetic_csv_filebackend_round_trip_is_bitwise(self, tmp_path):
        panel = SyntheticMarket(
            MarketConfig(num_stocks=20, num_days=150), seed=21
        ).generate()
        export_panel_csv(panel, tmp_path)
        back = FileBackend(tmp_path, sector_map=tmp_path / "sectors.txt").load_panel()
        assert panels_bitwise_equal(back, panel)

    def test_round_trip_preserves_relation_partitions(self, tmp_path):
        """Group ids may be renumbered by name sorting; membership may not."""
        panel = SyntheticMarket(
            MarketConfig(num_stocks=20, num_days=150), seed=21
        ).generate()
        export_panel_csv(panel, tmp_path)
        back = FileBackend(tmp_path, sector_map=tmp_path / "sectors.txt").load_panel()

        def partition(ids):
            groups = {}
            for stock, group in enumerate(ids):
                groups.setdefault(int(group), []).append(stock)
            return sorted(tuple(members) for members in groups.values())

        assert partition(back.taxonomy.sector_ids) == partition(panel.taxonomy.sector_ids)
        assert partition(back.taxonomy.industry_ids) == partition(panel.taxonomy.industry_ids)

    def test_round_trip_taskset_parity(self, tmp_path):
        """Same panel bytes => same task set bytes, relations included."""
        panel = SyntheticMarket(
            MarketConfig(num_stocks=20, num_days=150), seed=8
        ).generate()
        export_panel_csv(panel, tmp_path)
        back = FileBackend(tmp_path, sector_map=tmp_path / "sectors.txt").load_panel()
        left = build_taskset(panel)
        right = build_taskset(back)
        assert left.features.tobytes() == right.features.tobytes()
        assert left.labels.tobytes() == right.labels.tobytes()


class TestMissingDays:
    def test_gaps_forward_filled_on_union_calendar(self, tmp_path):
        write_csv(tmp_path / "AAA.csv", steady_rows(range(20), price=10.0))
        write_csv(tmp_path / "BBB.csv",
                  steady_rows(range(20), price=30.0, skip={5, 6}))
        panel = FileBackend(tmp_path).load_panel()
        assert panel.num_days == 20
        bbb = panel.tickers.index("BBB")
        # The two missing days carry the last traded price forward and
        # zero volume (no trading happened).
        assert panel.close[5, bbb] == panel.close[4, bbb]
        assert panel.volume[5, bbb] == 0.0
        assert panel.volume[7, bbb] == 1000.0

    def test_universe_membership_gap_drops_sparse_stock(self, tmp_path):
        """A stock covering under half the calendar is not aligned at all."""
        write_csv(tmp_path / "AAA.csv", steady_rows(range(40)))
        write_csv(tmp_path / "BBB.csv", steady_rows(range(40)))
        write_csv(tmp_path / "CCC.csv", steady_rows(range(10)))  # 25% coverage
        panel = FileBackend(tmp_path).load_panel()
        assert "CCC" not in panel.tickers
        assert set(panel.tickers) == {"AAA", "BBB"}

    def test_partial_member_kept_but_filtered_from_universe(self, tmp_path):
        """A stock with many non-traded days loads fine, then the Section
        5.1 universe filter removes it from the task universe."""
        write_csv(tmp_path / "AAA.csv", steady_rows(range(30)))
        write_csv(tmp_path / "BBB.csv", steady_rows(range(30)))
        write_csv(tmp_path / "DDD.csv",
                  steady_rows(range(30), skip=set(range(0, 30, 3))))
        panel = FileBackend(tmp_path).load_panel()
        assert "DDD" in panel.tickers
        filtered, report = UniverseFilter(max_missing_fraction=0.10).apply(panel)
        assert "DDD" not in filtered.tickers
        assert report.removed_insufficient_samples >= 1


class TestNaNPrices:
    def test_blank_prices_forward_filled(self, tmp_path):
        rows = steady_rows(range(10), price=20.0)
        date, _, high, low, _, volume = rows[4]
        rows[4] = (date, "", high, low, "", volume)  # blank open/close
        write_csv(tmp_path / "AAA.csv", rows)
        write_csv(tmp_path / "BBB.csv", steady_rows(range(10), price=40.0))
        panel = FileBackend(tmp_path).load_panel()
        aaa = panel.tickers.index("AAA")
        assert panel.close[4, aaa] == panel.close[3, aaa]
        assert np.isfinite(panel.close).all()

    def test_all_nan_column_is_rejected(self, tmp_path):
        rows = [(20200101 + day, "", "", "", "", 100.0) for day in range(10)]
        write_csv(tmp_path / "AAA.csv", rows)
        write_csv(tmp_path / "BBB.csv", steady_rows(range(10)))
        with pytest.raises(DataError):
            FileBackend(tmp_path).load_panel()


class TestUnsortedInput:
    def test_rows_sorted_by_date_on_parse(self, tmp_path):
        rows = [
            (20200101 + day, 10.0 + day, 11.0 + day, 9.0 + day, 10.0 + day, 100.0)
            for day in range(12)
        ]
        shuffled = [rows[i] for i in (7, 2, 11, 0, 5, 1, 9, 3, 10, 4, 8, 6)]
        write_csv(tmp_path / "AAA.csv", shuffled)
        write_csv(tmp_path / "BBB.csv", rows)
        panel = FileBackend(tmp_path).load_panel()
        assert (np.diff(panel.dates.astype(np.int64)) > 0).all()
        aaa = panel.tickers.index("AAA")
        # Shuffled rows land in chronological order, matching the sorted file.
        assert np.array_equal(panel.close[:, aaa], 10.0 + np.arange(12))
        assert np.array_equal(panel.close[:, aaa], panel.close[:, panel.tickers.index("BBB")])

    def test_duplicate_dates_rejected(self, tmp_path):
        rows = steady_rows(range(10))
        rows.append(rows[3])
        write_csv(tmp_path / "AAA.csv", rows)
        write_csv(tmp_path / "BBB.csv", steady_rows(range(10)))
        with pytest.raises(DataError, match="duplicate"):
            FileBackend(tmp_path).load_panel()
