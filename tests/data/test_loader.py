"""Tests for the CSV OHLCV loader."""

import numpy as np
import pytest

from repro.data import load_csv_directory, load_sector_map, parse_ohlcv_csv
from repro.errors import DataError


def write_csv(path, days=120, start_price=50.0, missing=()):
    lines = ["date,open,high,low,close,volume"]
    price = start_price
    for day in range(days):
        if day in missing:
            continue
        price *= 1.0 + 0.001 * ((day % 7) - 3)
        lines.append(
            f"2017{day:04d},{price:.2f},{price * 1.01:.2f},{price * 0.99:.2f},"
            f"{price:.2f},{1000 + day}"
        )
    path.write_text("\n".join(lines) + "\n")


class TestParseCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "AAA.csv"
        write_csv(path, days=30)
        columns = parse_ohlcv_csv(path)
        assert set(columns) == {"date", "open", "high", "low", "close", "volume"}
        assert columns["close"].shape == (30,)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            parse_ohlcv_csv(tmp_path / "nope.csv")

    def test_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("date,open,close\n20170101,1,2\n")
        with pytest.raises(DataError):
            parse_ohlcv_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("date,open,high,low,close,volume\n")
        with pytest.raises(DataError):
            parse_ohlcv_csv(path)


class TestSectorMap:
    def test_load(self, tmp_path):
        path = tmp_path / "sectors.csv"
        path.write_text("AAA,Tech,Software\nBBB,Health,Biotech\n# comment\n")
        mapping = load_sector_map(path)
        assert mapping["AAA"] == ("Tech", "Software")
        assert len(mapping) == 2

    def test_missing(self, tmp_path):
        with pytest.raises(DataError):
            load_sector_map(tmp_path / "nope.csv")

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "sectors.csv"
        path.write_text("AAA,Tech\n")
        with pytest.raises(DataError):
            load_sector_map(path)


class TestLoadDirectory:
    def test_basic_alignment(self, tmp_path):
        for ticker in ("AAA", "BBB", "CCC"):
            write_csv(tmp_path / f"{ticker}.csv", days=100)
        panel = load_csv_directory(tmp_path)
        assert panel.num_stocks == 3
        assert panel.num_days == 100
        assert set(panel.tickers) == {"AAA", "BBB", "CCC"}

    def test_sector_map_applied(self, tmp_path):
        for ticker in ("AAA", "BBB"):
            write_csv(tmp_path / f"{ticker}.csv", days=80)
        sector_map = {"AAA": ("Tech", "Software"), "BBB": ("Tech", "Hardware")}
        panel = load_csv_directory(tmp_path, sector_map=sector_map)
        taxonomy = panel.taxonomy
        assert taxonomy.num_sectors == 1
        assert taxonomy.num_industries == 2

    def test_without_sector_map_single_sector(self, tmp_path):
        for ticker in ("AAA", "BBB"):
            write_csv(tmp_path / f"{ticker}.csv", days=80)
        panel = load_csv_directory(tmp_path)
        assert panel.taxonomy.num_sectors == 1

    def test_sparse_stock_dropped(self, tmp_path):
        write_csv(tmp_path / "AAA.csv", days=100)
        write_csv(tmp_path / "BBB.csv", days=100)
        write_csv(tmp_path / "CCC.csv", days=100, missing=set(range(10, 90)))
        panel = load_csv_directory(tmp_path)
        assert "CCC" not in panel.tickers

    def test_missing_days_forward_filled(self, tmp_path):
        write_csv(tmp_path / "AAA.csv", days=100)
        write_csv(tmp_path / "BBB.csv", days=100, missing={50, 51})
        panel = load_csv_directory(tmp_path)
        assert np.isfinite(panel.close).all()

    def test_empty_directory(self, tmp_path):
        with pytest.raises(DataError):
            load_csv_directory(tmp_path)

    def test_not_a_directory(self, tmp_path):
        with pytest.raises(DataError):
            load_csv_directory(tmp_path / "missing")

    def test_too_few_covered_stocks(self, tmp_path):
        write_csv(tmp_path / "AAA.csv", days=100)
        with pytest.raises(DataError):
            load_csv_directory(tmp_path)
