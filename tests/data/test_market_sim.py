"""Tests for the synthetic market simulator."""

import numpy as np
import pytest

from repro.data import MarketConfig, StockPanel, SyntheticMarket, random_taxonomy
from repro.errors import DataError


class TestMarketConfig:
    def test_defaults_valid(self):
        config = MarketConfig()
        assert config.num_stocks > 1
        assert config.num_days >= 60

    def test_too_few_stocks_rejected(self):
        with pytest.raises(DataError):
            MarketConfig(num_stocks=1)

    def test_too_few_days_rejected(self):
        with pytest.raises(DataError):
            MarketConfig(num_days=10)

    def test_bad_fractions_rejected(self):
        with pytest.raises(DataError):
            MarketConfig(penny_stock_fraction=1.5)
        with pytest.raises(DataError):
            MarketConfig(illiquid_fraction=-0.1)

    def test_bad_vol_range_rejected(self):
        with pytest.raises(DataError):
            MarketConfig(idio_vol_range=(0.0, 0.01))
        with pytest.raises(DataError):
            MarketConfig(idio_vol_range=(0.05, 0.01))


class TestSyntheticMarket:
    def test_panel_shapes(self, small_panel):
        assert small_panel.close.shape == (220, 30)
        assert small_panel.num_days == 220
        assert small_panel.num_stocks == 30
        assert len(small_panel.tickers) == 30

    def test_prices_positive(self, small_panel):
        assert (small_panel.close > 0).all()
        assert (small_panel.open > 0).all()

    def test_high_low_bracket_open_close(self, small_panel):
        assert (small_panel.high >= small_panel.close - 1e-12).all()
        assert (small_panel.high >= small_panel.open - 1e-12).all()
        assert (small_panel.low <= small_panel.close + 1e-12).all()
        assert (small_panel.low <= small_panel.open + 1e-12).all()

    def test_volume_non_negative(self, small_panel):
        assert (small_panel.volume >= 0).all()

    def test_deterministic_given_seed(self):
        config = MarketConfig(num_stocks=10, num_days=80)
        a = SyntheticMarket(config, seed=9).generate()
        b = SyntheticMarket(config, seed=9).generate()
        np.testing.assert_allclose(a.close, b.close)
        np.testing.assert_allclose(a.volume, b.volume)

    def test_different_seeds_differ(self):
        config = MarketConfig(num_stocks=10, num_days=80)
        a = SyntheticMarket(config, seed=1).generate()
        b = SyntheticMarket(config, seed=2).generate()
        assert not np.allclose(a.close, b.close)

    def test_returns_definition(self, small_panel):
        returns = small_panel.returns()
        assert returns.shape == small_panel.close.shape
        np.testing.assert_allclose(returns[0], 0.0)
        expected = (small_panel.close[5] - small_panel.close[4]) / small_panel.close[4]
        np.testing.assert_allclose(returns[5], expected)

    def test_returns_are_noisy_but_bounded(self, small_panel):
        returns = small_panel.returns()[1:]
        assert np.abs(returns).max() < 1.0
        assert returns.std() > 1e-4

    def test_taxonomy_attached(self, small_panel):
        assert small_panel.taxonomy.num_stocks == small_panel.num_stocks


class TestStockPanelContainer:
    def test_mismatched_shapes_rejected(self, small_panel):
        with pytest.raises(DataError):
            StockPanel(
                open=small_panel.open,
                high=small_panel.high,
                low=small_panel.low,
                close=small_panel.close[:-1],
                volume=small_panel.volume,
                tickers=small_panel.tickers,
                dates=small_panel.dates,
                taxonomy=small_panel.taxonomy,
            )

    def test_wrong_ticker_count_rejected(self, small_panel):
        with pytest.raises(DataError):
            StockPanel(
                open=small_panel.open,
                high=small_panel.high,
                low=small_panel.low,
                close=small_panel.close,
                volume=small_panel.volume,
                tickers=small_panel.tickers[:-1],
                dates=small_panel.dates,
                taxonomy=small_panel.taxonomy,
            )

    def test_select_stocks(self, small_panel):
        subset = small_panel.select_stocks(np.array([0, 3, 5]))
        assert subset.num_stocks == 3
        np.testing.assert_allclose(subset.close[:, 1], small_panel.close[:, 3])

    def test_select_stocks_empty_rejected(self, small_panel):
        with pytest.raises(DataError):
            small_panel.select_stocks(np.array([], dtype=int))

    def test_select_days(self, small_panel):
        window = small_panel.select_days(10, 60)
        assert window.num_days == 50
        np.testing.assert_allclose(window.close[0], small_panel.close[10])

    def test_select_days_invalid_range(self, small_panel):
        with pytest.raises(DataError):
            small_panel.select_days(50, 20)
        with pytest.raises(DataError):
            small_panel.select_days(0, small_panel.num_days + 1)

    def test_taxonomy_size_mismatch_rejected(self, small_panel):
        bad_taxonomy = random_taxonomy(5, seed=0)
        with pytest.raises(DataError):
            StockPanel(
                open=small_panel.open,
                high=small_panel.high,
                low=small_panel.low,
                close=small_panel.close,
                volume=small_panel.volume,
                tickers=small_panel.tickers,
                dates=small_panel.dates,
                taxonomy=bad_taxonomy,
            )
