"""Tests for the sector/industry taxonomy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SectorTaxonomy, random_taxonomy
from repro.errors import DataError


def make_taxonomy():
    return SectorTaxonomy(
        sector_ids=np.array([0, 0, 1, 1, 2]),
        industry_ids=np.array([0, 1, 2, 2, 3]),
    )


class TestSectorTaxonomy:
    def test_basic_counts(self):
        taxonomy = make_taxonomy()
        assert taxonomy.num_stocks == 5
        assert taxonomy.num_sectors == 3
        assert taxonomy.num_industries == 4

    def test_sector_and_industry_lookup(self):
        taxonomy = make_taxonomy()
        assert taxonomy.sector_of(2) == 1
        assert taxonomy.industry_of(4) == 3

    def test_stocks_in_sector(self):
        taxonomy = make_taxonomy()
        np.testing.assert_array_equal(taxonomy.stocks_in_sector(0), [0, 1])
        np.testing.assert_array_equal(taxonomy.stocks_in_industry(2), [2, 3])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DataError):
            SectorTaxonomy(sector_ids=np.array([0, 1]), industry_ids=np.array([0]))

    def test_industry_spanning_sectors_rejected(self):
        with pytest.raises(DataError):
            SectorTaxonomy(
                sector_ids=np.array([0, 1]), industry_ids=np.array([5, 5])
            )

    def test_negative_ids_rejected(self):
        with pytest.raises(DataError):
            SectorTaxonomy(sector_ids=np.array([-1, 0]), industry_ids=np.array([0, 1]))

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            SectorTaxonomy(sector_ids=np.array([]), industry_ids=np.array([]))

    def test_group_matrix_shape_and_membership(self):
        taxonomy = make_taxonomy()
        matrix = taxonomy.group_matrix("sector")
        assert matrix.shape == (3, 5)
        assert matrix.sum() == 5  # every stock in exactly one sector
        assert matrix[0, 0] and matrix[0, 1]

    def test_group_index_is_dense(self):
        taxonomy = make_taxonomy()
        index = taxonomy.group_index("industry")
        assert index.min() == 0
        assert index.max() == taxonomy.num_industries - 1

    def test_group_index_unknown_level(self):
        with pytest.raises(DataError):
            make_taxonomy().group_index("country")

    def test_adjacency_symmetric_with_unit_diagonal(self):
        adjacency = make_taxonomy().adjacency("sector")
        np.testing.assert_array_equal(adjacency, adjacency.T)
        np.testing.assert_array_equal(np.diag(adjacency), np.ones(5))

    def test_adjacency_industry_finer_than_sector(self):
        taxonomy = make_taxonomy()
        sector_adj = taxonomy.adjacency("sector")
        industry_adj = taxonomy.adjacency("industry")
        assert (industry_adj <= sector_adj).all()

    def test_subset_preserves_relations(self):
        taxonomy = make_taxonomy()
        subset = taxonomy.subset(np.array([2, 3]))
        assert subset.num_stocks == 2
        assert subset.sector_of(0) == subset.sector_of(1)


class TestRandomTaxonomy:
    def test_shape_and_determinism(self):
        a = random_taxonomy(50, num_sectors=5, industries_per_sector=2, seed=3)
        b = random_taxonomy(50, num_sectors=5, industries_per_sector=2, seed=3)
        assert a.num_stocks == 50
        np.testing.assert_array_equal(a.sector_ids, b.sector_ids)
        np.testing.assert_array_equal(a.industry_ids, b.industry_ids)

    def test_all_sectors_present(self):
        taxonomy = random_taxonomy(50, num_sectors=7, seed=0)
        assert taxonomy.num_sectors == 7

    def test_more_sectors_than_stocks_is_capped(self):
        taxonomy = random_taxonomy(3, num_sectors=10, seed=0)
        assert taxonomy.num_sectors <= 3

    def test_invalid_arguments(self):
        with pytest.raises(DataError):
            random_taxonomy(0)
        with pytest.raises(DataError):
            random_taxonomy(10, num_sectors=0)

    @given(num_stocks=st.integers(2, 60), num_sectors=st.integers(1, 8),
           industries=st.integers(1, 4), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_industries_nest_inside_sectors(self, num_stocks, num_sectors, industries, seed):
        taxonomy = random_taxonomy(num_stocks, num_sectors, industries, seed=seed)
        for industry in np.unique(taxonomy.industry_ids):
            sectors = np.unique(taxonomy.sector_ids[taxonomy.industry_ids == industry])
            assert sectors.size == 1
