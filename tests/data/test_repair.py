"""Unit tests for the dirty-market repair layer (repro.data.repair).

Detection units (duplicates, stale runs, split-vs-spike classification),
the policy registry, structured rejection (DataIntegrityError pairs), the
gap policies through the loader, and the versioned AuditReport JSON.
The end-to-end corrupt→audit→repair properties live in
tests/data/test_corruption_fuzz.py.
"""

import numpy as np
import pytest

from repro.data import (
    AuditReport,
    FileBackend,
    MarketConfig,
    RepairPolicy,
    SyntheticMarket,
    Violation,
    export_panel_csv,
    load_csv_directory,
    panels_bitwise_equal,
    register_repair_policy,
    repair_policy,
    repair_policy_names,
)
from repro.data.repair import (
    AUDIT_REPORT_VERSION,
    dedupe_columns,
    find_duplicate_dates,
    find_series_violations,
    interpolate_fill,
    repair_series,
    _snap_split_factor,
)
from repro.errors import DataError, DataIntegrityError

from tests.data.test_file_edge_cases import steady_rows, write_csv


def columns_from(close, dates=None):
    close = np.asarray(close, dtype=np.float64)
    if dates is None:
        dates = np.arange(1, close.size + 1, dtype=np.float64)
    return {
        "date": np.asarray(dates, dtype=np.float64),
        "open": close * 0.99,
        "high": close * 1.01,
        "low": close * 0.98,
        "close": close.copy(),
        "volume": np.full(close.size, 1000.0),
    }


class TestPolicyRegistry:
    def test_shipped_policies(self):
        names = repair_policy_names()
        for expected in ("strict", "keep-first", "keep-last",
                         "gap-interpolate", "gap-drop", "split-adjust",
                         "despike", "robust"):
            assert expected in names

    def test_strict_is_the_default_and_none_resolves_to_it(self):
        assert repair_policy(None).name == "strict"
        assert repair_policy("strict").duplicates == "reject"
        assert repair_policy("strict").gaps == "ffill"

    def test_policy_passthrough(self):
        policy = repair_policy("robust")
        assert repair_policy(policy) is policy

    def test_unknown_policy_raises_with_alternatives(self):
        with pytest.raises(DataError, match="registered policies"):
            repair_policy("nope")

    def test_duplicate_registration_raises_unless_overwritten(self):
        from repro.data.repair import REPAIR_POLICIES

        policy = RepairPolicy("test-dup-policy")
        try:
            register_repair_policy(policy)
            with pytest.raises(DataError, match="already registered"):
                register_repair_policy(policy)
            register_repair_policy(policy, overwrite=True)
        finally:
            REPAIR_POLICIES.pop("test-dup-policy", None)

    def test_invalid_choice_raises(self):
        with pytest.raises(DataError, match="unknown gaps choice"):
            RepairPolicy("bad", gaps="zero-fill")

    def test_describe_is_json_friendly(self):
        described = repair_policy("robust").describe()
        assert described["name"] == "robust"
        assert described["splits"] == "back-adjust"


class TestDetectionUnits:
    def test_clean_series_has_no_violations(self):
        rng = np.random.default_rng(0)
        close = 50.0 * np.exp(np.cumsum(rng.normal(0, 0.02, 200)))
        assert find_series_violations("X", columns_from(close)) == []

    def test_duplicate_dates_found_with_conflict_flag(self):
        cols = columns_from([10.0, 11.0, 12.0, 13.0],
                            dates=[1.0, 2.0, 2.0, 3.0])
        violations = find_duplicate_dates("X", cols)
        assert [v.key() for v in violations] == [("duplicates", "X", (2,))]
        assert violations[0].detail["conflict"] is True

    def test_identical_duplicate_rows_are_not_a_conflict(self):
        cols = columns_from([10.0, 11.0, 11.0, 13.0],
                            dates=[1.0, 2.0, 2.0, 3.0])
        # Make the duplicate rows bit-identical across every column.
        for name in ("open", "high", "low", "close", "volume"):
            cols[name][2] = cols[name][1]
        (violation,) = find_duplicate_dates("X", cols)
        assert violation.detail["conflict"] is False

    def test_stale_run_detected_at_threshold(self):
        close = [50.0, 51.0, 52.0, 52.0, 52.0, 52.0, 53.0]
        (violation,) = find_series_violations("X", columns_from(close),
                                              kinds=("stale",))
        assert violation.kind == "stale"
        assert violation.dates == (3, 4, 5, 6)
        short = [50.0, 51.0, 52.0, 52.0, 52.0, 53.0]
        assert find_series_violations("X", columns_from(short),
                                      kinds=("stale",)) == []

    def test_persistent_jump_is_a_split(self):
        close = [50.0, 50.5, 25.0, 25.2, 25.1]
        (violation,) = find_series_violations("X", columns_from(close))
        assert violation.kind == "splits"
        assert violation.dates == (3,)
        assert violation.detail["factor"] == 2.0

    def test_reverting_jump_is_a_spike(self):
        close = [50.0, 50.5, 150.0, 50.2, 50.1]
        (violation,) = find_series_violations("X", columns_from(close))
        assert violation.kind == "spikes"
        assert violation.dates == (3,)

    def test_last_day_jump_counts_as_split(self):
        close = [50.0, 50.5, 50.2, 100.9]
        (violation,) = find_series_violations("X", columns_from(close))
        assert violation.kind == "splits"

    def test_snap_split_factor(self):
        assert _snap_split_factor(2.03) == 2.0
        assert _snap_split_factor(2.9) == 3.0
        assert _snap_split_factor(1 / 2.03) == 0.5
        # Far from any integer ratio: fall back to the raw ratio.
        assert _snap_split_factor(1.62) == 1.62


class TestDedupe:
    def test_keep_first_vs_keep_last(self):
        cols = columns_from([10.0, 11.0, 12.0, 13.0],
                            dates=[1.0, 2.0, 2.0, 3.0])
        first, violations = dedupe_columns("X", cols, "keep-first")
        last, _ = dedupe_columns("X", cols, "keep-last")
        assert list(first["close"]) == [10.0, 11.0, 13.0]
        assert list(last["close"]) == [10.0, 12.0, 13.0]
        assert len(violations) == 1

    def test_reject_raises_structured_error(self):
        cols = columns_from([10.0, 11.0, 12.0, 13.0],
                            dates=[1.0, 2.0, 2.0, 3.0])
        with pytest.raises(DataIntegrityError) as excinfo:
            dedupe_columns("X", cols, "reject")
        assert excinfo.value.pairs == (("X", 2),)
        assert isinstance(excinfo.value, DataError)

    def test_clean_columns_pass_through_unchanged(self):
        cols = columns_from([10.0, 11.0, 12.0])
        deduped, violations = dedupe_columns("X", cols, "keep-last")
        assert deduped is cols
        assert violations == []


class TestRepairSeries:
    def test_split_back_adjust_preserves_returns(self):
        rng = np.random.default_rng(1)
        clean = 50.0 * np.exp(np.cumsum(rng.normal(0, 0.01, 60)))
        dirty = clean.copy()
        dirty[30:] /= 2.0
        cols = columns_from(dirty)
        repaired, applied = repair_series(
            "X", cols, repair_policy("split-adjust"))
        assert [v.kind for v in applied] == ["splits"]
        ratios = repaired["close"][1:] / repaired["close"][:-1]
        clean_ratios = clean[1:] / clean[:-1]
        assert np.allclose(ratios, clean_ratios)
        # Pre-split volume scales up by the split factor.
        assert repaired["volume"][0] == 2000.0
        assert repaired["volume"][-1] == 1000.0

    def test_spike_interpolation_lands_on_neighbour_midpoint(self):
        close = [50.0, 50.5, 150.0, 50.2, 50.1]
        cols = columns_from(close)
        repaired, applied = repair_series("X", cols, repair_policy("despike"))
        assert [v.kind for v in applied] == ["spikes"]
        assert repaired["close"][2] == pytest.approx(0.5 * (50.5 + 50.2))
        # OHLC scale together (shape-preserving).
        assert repaired["high"][2] / repaired["close"][2] == pytest.approx(1.01)

    def test_keep_policies_are_a_no_op(self):
        close = [50.0, 50.5, 25.0, 25.2, 25.1]
        cols = columns_from(close)
        repaired, applied = repair_series("X", cols, repair_policy("strict"))
        assert repaired is cols
        assert applied == []


class TestGapPoliciesThroughLoader:
    def make_gapped_dir(self, tmp_path):
        write_csv(tmp_path / "AAA.csv", steady_rows(range(10)))
        rows = steady_rows(range(10), price=60.0, skip=(4, 5))
        write_csv(tmp_path / "BBB.csv", rows)
        return tmp_path

    def test_ffill_keeps_union_calendar(self, tmp_path):
        panel = load_csv_directory(self.make_gapped_dir(tmp_path))
        assert panel.num_days == 10
        column = panel.close[:, list(panel.tickers).index("BBB")]
        assert column[4] == column[3]

    def test_interpolate_fills_linearly(self, tmp_path):
        panel = load_csv_directory(self.make_gapped_dir(tmp_path),
                                   repair="gap-interpolate")
        assert panel.num_days == 10
        k = list(panel.tickers).index("BBB")
        write_back = panel.close[:, k]
        # Days 4 and 5 interpolate between day 3 and day 6 (all 60.0 here,
        # so use open which differs from close to see the linearity).
        expected = np.interp([4, 5], [3, 6], [write_back[3], write_back[6]])
        assert np.allclose(write_back[4:6], expected)

    def test_drop_restricts_calendar_to_common_dates(self, tmp_path):
        panel = load_csv_directory(self.make_gapped_dir(tmp_path),
                                   repair="gap-drop")
        assert panel.num_days == 8
        assert 20200104 not in panel.dates
        assert 20200105 not in panel.dates

    def test_drop_needs_enough_common_dates(self, tmp_path):
        write_csv(tmp_path / "AAA.csv", steady_rows(range(6), skip=(0, 1)))
        write_csv(tmp_path / "BBB.csv",
                  steady_rows(range(6), price=60.0, skip=(3, 4, 5)))
        with pytest.raises(DataError, match="fewer than 3 common dates"):
            load_csv_directory(tmp_path, repair="gap-drop")

    def test_interpolate_fill_edges_extend(self):
        series = np.array([np.nan, 2.0, np.nan, 4.0, np.nan])
        filled = interpolate_fill(series)
        assert list(filled) == [2.0, 2.0, 3.0, 4.0, 4.0]
        assert list(interpolate_fill(np.full(3, np.nan))) == [0.0, 0.0, 0.0]


class TestStructuredRejection:
    def test_loader_aggregates_pairs_across_files(self, tmp_path):
        rows = steady_rows(range(8))
        write_csv(tmp_path / "AAA.csv", rows + [rows[3]])
        rows_b = steady_rows(range(8), price=60.0)
        write_csv(tmp_path / "BBB.csv", rows_b + [rows_b[5]])
        write_csv(tmp_path / "CCC.csv", steady_rows(range(8), price=70.0))
        with pytest.raises(DataIntegrityError, match="duplicate dates") as excinfo:
            load_csv_directory(tmp_path)
        assert excinfo.value.pairs == (
            ("AAA", 20200103), ("BBB", 20200105),
        )

    def test_keep_last_resolves_instead_of_raising(self, tmp_path):
        rows = steady_rows(range(8))
        conflicting = (rows[3][0], 99.0, 100.0, 98.0, 99.0, 1.0)
        write_csv(tmp_path / "AAA.csv", rows + [conflicting])
        write_csv(tmp_path / "BBB.csv", steady_rows(range(8), price=60.0))
        panel = load_csv_directory(tmp_path, repair="keep-last")
        k = list(panel.tickers).index("AAA")
        assert panel.close[3, k] == 99.0
        first = load_csv_directory(tmp_path, repair="keep-first")
        assert first.close[3, list(first.tickers).index("AAA")] == 50.0


class TestAuditReportJson:
    def make_report(self):
        return AuditReport(
            violations=(
                Violation("splits", "AAA", (20200104,), {"factor": 2.0}),
                Violation("gaps", "BBB", (20200105, 20200106)),
            ),
            source="/data",
        )

    def test_round_trip(self):
        report = self.make_report()
        back = AuditReport.from_json(report.to_json())
        assert back.keys() == report.keys()
        assert back.source == "/data"
        assert back.version == AUDIT_REPORT_VERSION

    def test_counts_and_pairs(self):
        report = self.make_report()
        assert report.counts() == {"gaps": 1, "splits": 1}
        assert ("BBB", 20200106) in report.pairs()

    def test_version_mismatch_raises(self):
        payload = self.make_report().to_json()
        payload["version"] = AUDIT_REPORT_VERSION + 1
        with pytest.raises(DataError, match="version"):
            AuditReport.from_json(payload)

    def test_unknown_violation_kind_raises(self):
        with pytest.raises(DataError, match="taxonomy"):
            Violation("typo", "AAA", (1,))

    def test_render_mentions_kinds_and_tickers(self):
        rendered = self.make_report().render()
        assert "splits" in rendered and "AAA" in rendered
        assert AuditReport(violations=()).render() == \
            "audit: clean (no violations)"


class TestBackendIntegration:
    def test_repair_is_part_of_identity(self, tmp_path):
        panel = SyntheticMarket(
            MarketConfig(num_stocks=12, num_days=90), seed=4
        ).generate()
        export_panel_csv(panel, tmp_path)
        strict = FileBackend(tmp_path, sector_map=tmp_path / "sectors.txt")
        robust = FileBackend(tmp_path, sector_map=tmp_path / "sectors.txt",
                             repair="robust")
        assert strict.cache_key() != robust.cache_key()
        assert strict._source_key() != robust._source_key()
        assert robust.describe()["repair"] == "robust"
        # On clean data every policy loads the identical panel.
        assert panels_bitwise_equal(strict.load_panel(), robust.load_panel())

    def test_dataspec_validates_repair_name(self):
        from repro.data import DataSpec

        with pytest.raises(DataError, match="registered policies"):
            DataSpec(kind="file", path="/tmp", repair="nope")
        spec = DataSpec(kind="file", path="/tmp").repaired("keep-last")
        assert spec.repair == "keep-last"
