"""Tests for calendar-aware OHLCV resampling (repro.data.resample)."""

import numpy as np
import pytest

from repro.data import MarketConfig, StockPanel, SyntheticMarket, resample_panel
from repro.data.relations import SectorTaxonomy
from repro.data.resample import period_keys
from repro.errors import DataError


def make_calendar_panel(dates):
    """A tiny two-stock panel with explicit (YYYYMMDD or index) dates."""
    T = len(dates)
    base = np.arange(1.0, T + 1.0)
    close = np.column_stack([base + 10.0, base + 20.0])
    return StockPanel(
        open=close * 0.99,
        high=close * 1.02,
        low=close * 0.98,
        close=close,
        volume=np.full((T, 2), 100.0),
        tickers=("AAA", "BBB"),
        dates=np.asarray(dates, dtype=np.int64),
        taxonomy=SectorTaxonomy(
            sector_ids=np.zeros(2, dtype=np.int64),
            industry_ids=np.zeros(2, dtype=np.int64),
        ),
    )


class TestPeriodKeys:
    def test_synthetic_indices_use_fixed_weeks(self):
        keys = period_keys(np.arange(12), "weekly")
        assert np.array_equal(keys, np.arange(12) // 5)

    def test_synthetic_indices_use_fixed_months(self):
        keys = period_keys(np.arange(50), "monthly")
        assert np.array_equal(keys, np.arange(50) // 21)

    def test_yyyymmdd_weekly_groups_by_iso_week(self):
        # 2021-01-08 is a Friday; 2021-01-11 the following Monday.
        keys = period_keys(np.array([20210107, 20210108, 20210111]), "weekly")
        assert keys[0] == keys[1]
        assert keys[1] != keys[2]

    def test_yyyymmdd_monthly_groups_by_month(self):
        keys = period_keys(np.array([20210129, 20210201, 20210226]), "monthly")
        assert keys[0] != keys[1]
        assert keys[1] == keys[2]

    def test_unknown_frequency(self):
        with pytest.raises(DataError, match="frequency"):
            period_keys(np.arange(10), "hourly")

    def test_invalid_yyyymmdd(self):
        with pytest.raises(DataError, match="YYYYMMDD"):
            period_keys(np.array([20211345, 20211346]), "monthly")

    def test_mixed_scale_dates_rejected(self):
        """One stray day index must not flip a calendar panel to // 5."""
        with pytest.raises(DataError, match="mix"):
            period_keys(np.array([0, 20240102, 20240103]), "weekly")


class TestResamplePanel:
    def test_ohlcv_aggregation_rules(self):
        panel = make_calendar_panel(list(range(10)))  # two 5-day weeks
        weekly = resample_panel(panel, "weekly")
        assert weekly.num_days == 2
        # open = first day's open, close = last day's close.
        assert np.array_equal(weekly.open[0], panel.open[0])
        assert np.array_equal(weekly.close[0], panel.close[4])
        assert np.array_equal(weekly.close[1], panel.close[9])
        # high/low = extremes, volume = sum, date = last day of the period.
        assert np.array_equal(weekly.high[0], panel.high[:5].max(axis=0))
        assert np.array_equal(weekly.low[0], panel.low[:5].min(axis=0))
        assert np.array_equal(weekly.volume[0], panel.volume[:5].sum(axis=0))
        assert weekly.dates[0] == panel.dates[4]

    def test_partial_final_period_kept(self):
        weekly = resample_panel(make_calendar_panel(list(range(7))), "weekly")
        assert weekly.num_days == 2  # 5-day week + 2-day stub

    def test_unsorted_dates_rejected(self):
        """Disorder even *within* a period would swap open/close silently."""
        panel = make_calendar_panel([20240102, 20240101, 20240103])
        with pytest.raises(DataError, match="strictly increasing"):
            resample_panel(panel, "weekly")

    def test_calendar_weeks_respect_weekends(self):
        # Thu, Fri, Mon, Tue: one ISO week boundary over the weekend.
        panel = make_calendar_panel([20210107, 20210108, 20210111, 20210112])
        weekly = resample_panel(panel, "weekly")
        assert weekly.num_days == 2
        assert weekly.dates.tolist() == [20210108, 20210112]

    def test_taxonomy_and_tickers_pass_through(self):
        panel = SyntheticMarket(MarketConfig(num_stocks=12, num_days=90), seed=5).generate()
        monthly = resample_panel(panel, "monthly")
        assert monthly.tickers == panel.tickers
        assert monthly.taxonomy is panel.taxonomy
        assert monthly.num_days == 90 // 21 + 1

    def test_resampled_panel_feeds_the_pipeline(self):
        from repro.data import build_taskset

        panel = SyntheticMarket(
            MarketConfig(num_stocks=15, num_days=420), seed=6
        ).generate()
        taskset = build_taskset(resample_panel(panel, "weekly"))
        assert taskset.num_samples >= 3
        assert taskset.window == 13
