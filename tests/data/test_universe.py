"""Tests for the Section 5.1 universe-filtering rules."""

import numpy as np
import pytest

from repro.data import MarketConfig, SyntheticMarket, UniverseFilter
from repro.errors import UniverseError


class TestUniverseFilter:
    def test_defaults_keep_most_stocks(self, small_panel):
        filtered, report = UniverseFilter().apply(small_panel)
        assert report.total_stocks == small_panel.num_stocks
        assert report.kept_stocks == filtered.num_stocks
        assert report.kept_stocks >= small_panel.num_stocks * 0.7

    def test_report_matches_apply(self, small_panel):
        universe_filter = UniverseFilter(min_price=1.0, max_missing_fraction=0.1)
        report = universe_filter.report(small_panel)
        filtered, applied_report = universe_filter.apply(small_panel)
        assert applied_report.kept_stocks == report.kept_stocks
        np.testing.assert_array_equal(applied_report.kept_indices, report.kept_indices)

    def test_low_price_stocks_removed(self, small_panel):
        # Force one stock's prices below the threshold.
        panel = small_panel.select_stocks(np.arange(small_panel.num_stocks))
        panel.close[:, 0] = 0.5
        report = UniverseFilter(min_price=1.0).report(panel)
        assert 0 not in report.kept_indices

    def test_illiquid_stocks_removed(self, small_panel):
        panel = small_panel.select_stocks(np.arange(small_panel.num_stocks))
        panel.volume[:, 1] = 0.0
        report = UniverseFilter(max_missing_fraction=0.1).report(panel)
        assert 1 not in report.kept_indices
        assert report.removed_insufficient_samples >= 1

    def test_removed_counts_sum(self, small_panel):
        report = UniverseFilter().report(small_panel)
        assert report.removed_stocks == report.total_stocks - report.kept_stocks

    def test_too_aggressive_filter_raises(self, small_panel):
        with pytest.raises(UniverseError):
            UniverseFilter(min_price=1e9).apply(small_panel)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(UniverseError):
            UniverseFilter(min_price=-1.0)
        with pytest.raises(UniverseError):
            UniverseFilter(max_missing_fraction=2.0)

    def test_penny_generator_stocks_eventually_filtered(self):
        config = MarketConfig(num_stocks=60, num_days=400, penny_stock_fraction=0.1)
        panel = SyntheticMarket(config, seed=11).generate()
        report = UniverseFilter(min_price=1.0).report(panel)
        assert report.removed_stocks >= 1
