"""The documentation is executable: doctest API.md, link-check everything.

Two guarantees keep the docs from rotting:

* every ``python`` fenced block in ``docs/API.md`` is run as one sequential
  doctest session (state carries between blocks, as the page promises), so
  a signature change that breaks a snippet breaks the build;
* every relative markdown link in ``README.md``, ``docs/`` and
  ``benchmarks/README.md`` must resolve to an existing file.
"""

from __future__ import annotations

import doctest
import importlib.util
import re
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

_PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)
_MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def documentation_files() -> list[Path]:
    files = [REPO_ROOT / "README.md", REPO_ROOT / "benchmarks" / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def run_markdown_doctests(relative_path: str) -> None:
    """Run every ``python`` block of one markdown page as a doctest session."""
    text = (REPO_ROOT / relative_path).read_text()
    # Dedent each block: markdown nests fenced code inside list items.
    source = "\n".join(
        textwrap.dedent(block) for block in _PYTHON_BLOCK.findall(text)
    )
    parser = doctest.DocTestParser()
    test = parser.get_doctest(source, {}, relative_path, relative_path, 0)
    assert test.examples, f"{relative_path} contains no doctest examples"
    runner = doctest.DocTestRunner(verbose=False)
    runner.run(test)
    results = runner.summarize(verbose=False)
    assert results.failed == 0, (
        f"{results.failed} of {results.attempted} {relative_path} snippets failed"
    )


class TestApiSnippets:
    def test_api_md_has_snippets(self):
        blocks = _PYTHON_BLOCK.findall((REPO_ROOT / "docs" / "API.md").read_text())
        assert len(blocks) >= 8

    def test_api_md_snippets_run_clean(self):
        """Run every ``python`` block of docs/API.md as one doctest session."""
        run_markdown_doctests("docs/API.md")

    def test_architecture_md_snippets_run_clean(self):
        """The add-a-backend guide's snippets are executable too."""
        run_markdown_doctests("docs/ARCHITECTURE.md")

    def test_data_md_snippets_run_clean(self):
        """The data/scenario guide's snippets are executable too."""
        run_markdown_doctests("docs/DATA.md")

    def test_observability_md_snippets_run_clean(self):
        """The telemetry guide's snippets are executable too."""
        run_markdown_doctests("docs/OBSERVABILITY.md")


class TestBenchmarkTable:
    def test_readme_table_matches_artifacts(self):
        """README's 'Measured performance' table is generated, not hand-kept.

        After rerunning a benchmark, regenerate the block with
        ``python benchmarks/render_bench_table.py`` and paste it in.
        """
        spec = importlib.util.spec_from_file_location(
            "render_bench_table",
            REPO_ROOT / "benchmarks" / "render_bench_table.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        rendered = module.render()
        readme = (REPO_ROOT / "README.md").read_text()
        assert rendered in readme, (
            "README.md benchmark table is stale; rerun "
            "`python benchmarks/render_bench_table.py` and paste the output"
        )


class TestLinks:
    def test_documented_files_exist(self):
        for path in documentation_files():
            assert path.exists(), f"missing documentation file {path}"

    def test_relative_links_resolve(self):
        broken: list[str] = []
        for path in documentation_files():
            for target in _MARKDOWN_LINK.findall(path.read_text()):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                candidate = (path.parent / target.split("#")[0]).resolve()
                if not candidate.exists():
                    broken.append(f"{path.relative_to(REPO_ROOT)} -> {target}")
        assert not broken, "broken relative links:\n" + "\n".join(broken)
