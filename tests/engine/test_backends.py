"""Backend contract tests: both engines speak the protocol identically."""

import numpy as np
import pytest

from repro.core import AlphaEvaluator, get_initialization
from repro.engine import (
    ENGINES,
    CompiledBackend,
    ExecutionEngine,
    InterpreterBackend,
    make_backend,
    resolve_engine,
)
from repro.errors import EngineError


@pytest.fixture()
def program(dims):
    return get_initialization("NN", dims, seed=3)


class TestResolveEngine:
    def test_default_is_compiled(self):
        assert resolve_engine() == "compiled"
        assert resolve_engine(None, None) == "compiled"

    def test_legacy_flag_maps_onto_names(self):
        assert resolve_engine(compiled=True) == "compiled"
        assert resolve_engine(compiled=False) == "interpreter"

    def test_explicit_name_wins_over_flag(self):
        assert resolve_engine("interpreter", compiled=True) == "interpreter"

    def test_unknown_engine_rejected(self):
        with pytest.raises(EngineError, match="unknown execution engine"):
            resolve_engine("gpu")


class TestMakeBackend:
    def test_every_engine_constructs(self, evaluator, program):
        for engine in ENGINES:
            backend = make_backend(program, evaluator.make_context(), engine)
            assert isinstance(backend, ExecutionEngine)

    def test_classes_match_names(self, evaluator, program):
        ctx = evaluator.make_context()
        assert isinstance(
            make_backend(program, ctx, "interpreter"), InterpreterBackend
        )
        assert isinstance(make_backend(program, ctx, "compiled"), CompiledBackend)


class TestStepEquivalence:
    """Stepping both backends by hand produces bitwise-equal predictions."""

    def test_day_by_day_predictions_match(self, small_taskset, evaluator, program):
        features = small_taskset.split_features("train")
        labels = small_taskset.split_labels("train")
        backends = [
            make_backend(program, evaluator.make_context(), engine)
            for engine in ENGINES
        ]
        for backend in backends:
            backend.run_setup()
        for day in range(5):
            predictions = []
            for backend in backends:
                backend.set_input(features[day])
                backend.run_predict()
                predictions.append(backend.prediction.copy())
                backend.set_label(labels[day])
                backend.run_update()
            reference = predictions[0]
            assert reference.shape == (small_taskset.num_tasks,)
            for other in predictions[1:]:
                assert other.tobytes() == reference.tobytes()

    def test_interpreter_matches_legacy_evaluator(self, small_taskset, program):
        legacy = AlphaEvaluator(
            small_taskset, seed=0, max_train_steps=40, compiled=False
        )
        modern = AlphaEvaluator(
            small_taskset, seed=0, max_train_steps=40, engine="interpreter"
        )
        assert legacy.engine == modern.engine == "interpreter"
        left = legacy.run(program, splits=("valid",))["valid"]
        right = modern.run(program, splits=("valid",))["valid"]
        assert left.tobytes() == right.tobytes()


class TestCapabilities:
    def test_interpreter_never_batches(self, evaluator, program):
        backend = make_backend(program, evaluator.make_context(), "interpreter")
        assert not backend.supports_fused_inference
        assert not backend.supports_static_predict
        with pytest.raises(EngineError, match="does not batch"):
            backend.run_inference_batch(np.zeros((1, 1, 1, 1)))

    def test_static_predict_implies_fused(self, evaluator, dims):
        for code in ("D", "NN", "R"):
            backend = make_backend(
                get_initialization(code, dims, seed=3),
                evaluator.make_context(),
                "compiled",
            )
            if backend.supports_static_predict:
                assert backend.supports_fused_inference

    def test_domain_expert_predict_is_static(self, evaluator, dims):
        """The formulaic alpha reads no Update()-carried state."""
        backend = make_backend(
            get_initialization("D", dims, seed=3),
            evaluator.make_context(),
            "compiled",
        )
        assert backend.supports_static_predict

    def test_nn_alpha_predict_is_not_static(self, evaluator, dims):
        """The NN alpha's Predict() reads weights Update() trains."""
        backend = make_backend(
            get_initialization("NN", dims, seed=3),
            evaluator.make_context(),
            "compiled",
        )
        assert not backend.supports_static_predict
