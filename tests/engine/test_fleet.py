"""FleetEngine tests: dedup, shared-pass evaluation, day-major serving."""

import numpy as np
import pytest

from repro.core import AlphaEvaluator, get_initialization
from repro.engine import FleetEngine
from repro.errors import StreamError


@pytest.fixture()
def programs(dims, mutator):
    bases = [get_initialization(code, dims, seed=3) for code in ("D", "NN", "R")]
    extra = mutator.mutate(bases[0])
    return [program.copy(name=f"alpha_{i}")
            for i, program in enumerate(bases + [extra])]


class TestMembership:
    def test_duplicate_program_shares_backend(self, evaluator, programs):
        fleet = FleetEngine(evaluator)
        first = fleet.add(programs[0], name="a")
        twin = fleet.add(programs[0], name="b")
        assert not first.deduplicated and twin.deduplicated
        assert twin.key == first.key
        assert fleet.num_members == 2 and fleet.num_unique == 1

    def test_dedup_off_keeps_every_member_distinct(self, evaluator, programs):
        fleet = FleetEngine(evaluator, dedup=False)
        fleet.add(programs[0], name="a")
        twin = fleet.add(programs[0], name="b")
        assert not twin.deduplicated
        assert fleet.num_unique == 2

    def test_duplicate_name_rejected(self, evaluator, programs):
        fleet = FleetEngine(evaluator)
        fleet.add(programs[0], name="a")
        with pytest.raises(StreamError, match="already registered"):
            fleet.add(programs[1], name="a")

    def test_invalid_program_rejected_at_registration(self, evaluator):
        """Structural errors surface at add(), not later mid-warm-start."""
        from repro.core import AlphaProgram, Operand, Operation
        from repro.errors import ProgramError

        bad = AlphaProgram(predict=[
            Operation("s_add", (Operand.scalar(99), Operand.scalar(0)),
                      Operand.scalar(1)),
        ], name="bad")
        fleet = FleetEngine(evaluator)
        with pytest.raises(ProgramError):
            fleet.add(bad)
        assert fleet.num_members == 0


class TestOfflineEvaluation:
    def test_run_matches_per_program_evaluator_bitwise(self, evaluator, programs):
        fleet = FleetEngine(evaluator)
        for program in programs:
            fleet.add(program)
        runs = fleet.run(splits=("valid", "test"))
        for program in programs:
            expected = evaluator.run(program, splits=("valid", "test"))
            for split in ("valid", "test"):
                assert runs[program.name][split].tobytes() == \
                    expected[split].tobytes()

    def test_deduplicated_names_share_panels(self, evaluator, programs):
        fleet = FleetEngine(evaluator)
        fleet.add(programs[0], name="a")
        fleet.add(programs[0], name="b")
        runs = fleet.run(splits=("valid",))
        assert runs["a"]["valid"] is runs["b"]["valid"]

    def test_evaluate_attributes_each_members_own_program(self, evaluator, dims):
        """A deduplicated member's result carries *its* program, not the
        representative's (they execute through one backend but remain
        distinct objects with distinct names)."""
        base = get_initialization("D", dims, seed=3)
        twin = base.copy(name="twin_program")
        fleet = FleetEngine(evaluator)
        fleet.add(base, name="a")
        member = fleet.add(twin, name="b")
        assert member.deduplicated
        results = fleet.evaluate()
        assert results["a"].program is base
        assert results["b"].program is twin

    def test_interpreter_fleet_suspend_raises_typed_error(
        self, evaluator, programs
    ):
        from repro.core import AlphaEvaluator

        interpreter = AlphaEvaluator(
            evaluator.taskset, seed=0, max_train_steps=40, engine="interpreter"
        )
        fleet = FleetEngine(interpreter)
        fleet.add(programs[0])
        fleet.warm_start()
        with pytest.raises(StreamError, match="no.*tape protocol"):
            fleet.suspend_tapes()

    def test_evaluate_matches_evaluator_evaluate(self, evaluator, programs):
        fleet = FleetEngine(evaluator)
        for program in programs:
            fleet.add(program)
        results = fleet.evaluate()
        for program in programs:
            expected = evaluator.evaluate(program)
            result = results[program.name]
            assert result.fitness == expected.fitness
            assert result.is_valid == expected.is_valid
            assert np.array_equal(result.daily_ic_valid, expected.daily_ic_valid)

    def test_interpreter_fleet_agrees_with_compiled_fleet(
        self, small_taskset, programs
    ):
        panels = []
        for engine in ("interpreter", "compiled"):
            evaluator = AlphaEvaluator(
                small_taskset, seed=0, max_train_steps=40, engine=engine
            )
            fleet = FleetEngine(evaluator)
            for program in programs:
                fleet.add(program)
            panels.append(fleet.run(splits=("valid",)))
        for name in panels[0]:
            assert panels[0][name]["valid"].tobytes() == \
                panels[1][name]["valid"].tobytes()

    def test_run_is_repeatable(self, evaluator, programs):
        fleet = FleetEngine(evaluator)
        fleet.add(programs[0])
        first = fleet.run(splits=("valid",))
        second = fleet.run(splits=("valid",))
        name = programs[0].name
        assert first[name]["valid"].tobytes() == second[name]["valid"].tobytes()


class TestServing:
    def warm_fleet(self, evaluator, programs):
        fleet = FleetEngine(evaluator)
        for program in programs:
            fleet.add(program)
        fleet.warm_start()
        return fleet

    def test_step_bar_matches_offline_inference(
        self, small_taskset, evaluator, programs
    ):
        fleet = self.warm_fleet(evaluator, programs)
        features = small_taskset.split_features("valid")
        labels = small_taskset.split_labels("valid")
        streamed = {key: [] for key in fleet.executors}
        for day in range(features.shape[0]):
            for key, prediction in fleet.step_bar(features[day]).items():
                streamed[key].append(prediction)
            fleet.reveal(labels[day])
        for program in programs:
            batch = evaluator.run(program, splits=("valid",))["valid"]
            key = fleet.key_of(program.name)
            assert np.asarray(streamed[key]).tobytes() == batch.tobytes()

    def test_warm_start_guards(self, evaluator, programs):
        fleet = FleetEngine(evaluator)
        with pytest.raises(StreamError, match="nothing to warm-start"):
            fleet.warm_start()
        fleet.add(programs[0])
        fleet.warm_start()
        with pytest.raises(StreamError, match="already warm"):
            fleet.warm_start()
        with pytest.raises(StreamError, match="warm fleet"):
            fleet.add(programs[1])

    def test_step_requires_warmth(self, small_taskset, evaluator, programs):
        fleet = FleetEngine(evaluator)
        fleet.add(programs[0])
        with pytest.raises(StreamError, match="warm-started"):
            fleet.step_bar(small_taskset.split_features("valid")[0])

    def test_suspend_resume_roundtrip(self, small_taskset, evaluator, programs):
        features = small_taskset.split_features("valid")
        labels = small_taskset.split_labels("valid")

        reference = self.warm_fleet(evaluator, programs)
        expected = []
        for day in range(10):
            expected.append(reference.step_bar(features[day]))
            reference.reveal(labels[day])

        first = self.warm_fleet(
            AlphaEvaluator(small_taskset, seed=0, max_train_steps=40), programs
        )
        for day in range(4):
            first.step_bar(features[day])
            first.reveal(labels[day])
        tapes = first.suspend_tapes()

        resumed = FleetEngine(
            AlphaEvaluator(small_taskset, seed=0, max_train_steps=40)
        )
        for program in programs:
            resumed.add(program)
        resumed.resume_tapes(tapes, days_served=4)
        assert all(ex.days_served == 4 for ex in resumed.executors.values())
        for day in range(4, 10):
            stepped = resumed.step_bar(features[day])
            for key, prediction in stepped.items():
                assert prediction.tobytes() == expected[day][key].tobytes()
            resumed.reveal(labels[day])


class TestFromBackend:
    """Fleets built straight from a data backend (contexts from backends)."""

    def test_from_backend_matches_hand_built_fleet(self, programs):
        from repro.data import MarketConfig, Split, SyntheticBackend

        backend = SyntheticBackend(
            MarketConfig(num_stocks=30, num_days=220), seed=123
        )
        split = Split(train=110, valid=30, test=30)
        fleet = FleetEngine.from_backend(
            backend, programs=programs, split=split, seed=0, max_train_steps=40
        )
        assert fleet.num_members == len(programs)

        hand_built = FleetEngine(
            AlphaEvaluator(backend.build_taskset(split=split), seed=0,
                           max_train_steps=40)
        )
        for program in programs:
            hand_built.add(program)
        left = fleet.run(splits=("valid",))
        right = hand_built.run(splits=("valid",))
        for program in programs:
            assert left[program.name]["valid"].tobytes() == \
                right[program.name]["valid"].tobytes()

    def test_from_backend_accepts_resampled_source(self, programs):
        from repro.data import MarketConfig, ResampledBackend, SyntheticBackend

        weekly = ResampledBackend(
            SyntheticBackend(MarketConfig(num_stocks=20, num_days=420), seed=7),
            "weekly",
        )
        fleet = FleetEngine.from_backend(weekly, programs=programs[:1], seed=0)
        runs = fleet.run(splits=("valid",))
        assert runs[programs[0].name]["valid"].shape[1] == fleet.taskset.num_tasks
