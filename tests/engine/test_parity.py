"""Fuzzed four-way parity: interpreter / compiled / fleet / time-batched.

The engine layer's hard contract: random programs produce bitwise-identical
prediction panels on every execution path — the reference interpreter, the
compiled tape with the fast paths disabled, the compiled tape with fused
inference and static-predict time batching enabled, and a FleetEngine batch
— including across suspend/resume round-trips through the engine layer.
"""

import numpy as np
import pytest

from repro.core import AlphaEvaluator, get_initialization
from repro.engine import FleetEngine, IncrementalExecutor, make_backend, run_protocol

SPLITS = ("valid", "test")


def fuzz_programs(dims, mutator, count=12):
    """A deterministic mixed bag of initialisation alphas and mutants."""
    bases = [get_initialization(code, dims, seed=3) for code in ("D", "NN", "R")]
    programs = []
    while len(programs) < count:
        program = bases[len(programs) % len(bases)]
        for _ in range(len(programs) % 4):
            program = mutator.mutate(program)
        programs.append(program.copy(name=f"fuzz_{len(programs)}"))
    return programs


@pytest.fixture()
def fuzzed(dims, mutator):
    return fuzz_programs(dims, mutator)


def make_evaluator(taskset, **kwargs):
    return AlphaEvaluator(taskset, seed=0, max_train_steps=40, **kwargs)


class TestFourWayParity:
    def test_all_paths_agree_bitwise(self, small_taskset, fuzzed):
        interpreter = make_evaluator(small_taskset, engine="interpreter")
        compiled_loop = make_evaluator(
            small_taskset, engine="compiled", time_batched=False
        )
        compiled_batched = make_evaluator(
            small_taskset, engine="compiled", time_batched=True
        )
        fleet = FleetEngine(make_evaluator(small_taskset))
        for program in fuzzed:
            fleet.add(program)
        fleet_runs = fleet.run(splits=SPLITS)

        batched_static = 0
        for program in fuzzed:
            reference = interpreter.run(program, splits=SPLITS)
            loop = compiled_loop.run(program, splits=SPLITS)
            batched = compiled_batched.run(program, splits=SPLITS)
            backend = compiled_batched.make_backend(program)
            if backend.supports_static_predict:
                batched_static += 1
            for split in SPLITS:
                expected = reference[split].tobytes()
                assert loop[split].tobytes() == expected, (
                    f"{program.name}: compiled day-loop diverged on {split}"
                )
                assert batched[split].tobytes() == expected, (
                    f"{program.name}: time-batched path diverged on {split}"
                )
                assert fleet_runs[program.name][split].tobytes() == expected, (
                    f"{program.name}: fleet evaluation diverged on {split}"
                )
        # the fuzz bag must actually exercise the static-predict fast path
        assert batched_static > 0

    def test_use_update_ablation_agrees(self, small_taskset, fuzzed):
        """With Update() disabled every fused program batches its training."""
        interpreter = make_evaluator(
            small_taskset, engine="interpreter", use_update=False
        )
        batched = make_evaluator(small_taskset, use_update=False)
        for program in fuzzed[:6]:
            reference = interpreter.run(program, splits=SPLITS, use_update=False)
            fast = batched.run(program, splits=SPLITS, use_update=False)
            for split in SPLITS:
                assert fast[split].tobytes() == reference[split].tobytes()


class TestSuspendResumeThroughEngine:
    def stream(self, executor, features, labels, start, stop):
        rows = []
        for day in range(start, stop):
            rows.append(executor.step(features[day]))
            executor.reveal(labels[day])
        return rows

    def test_roundtrip_matches_uninterrupted_run(self, small_taskset, fuzzed):
        evaluator = make_evaluator(small_taskset)
        features = small_taskset.split_features("valid")
        labels = small_taskset.split_labels("valid")
        train_features = small_taskset.split_features("train")
        train_labels = small_taskset.split_labels("train")
        day_indices = evaluator.train_day_indices()
        cut = 7
        for program in fuzzed[:6]:
            batch = evaluator.run(program, splits=("valid",))["valid"]

            first = IncrementalExecutor(program, evaluator.make_context())
            first.warm_start(train_features, train_labels,
                             day_indices=day_indices)
            before = self.stream(first, features, labels, 0, cut)
            state = first.suspend()

            resumed = IncrementalExecutor(program, evaluator.make_context())
            resumed.resume(state, days_served=first.days_served)
            assert resumed.days_served == cut
            after = self.stream(resumed, features, labels, cut,
                                features.shape[0])

            streamed = np.asarray(before + after)
            assert streamed.tobytes() == batch.tobytes(), (
                f"{program.name}: suspend/resume round-trip diverged"
            )


class TestProtocolDirectParity:
    def test_run_protocol_equals_evaluator_run(self, small_taskset, fuzzed):
        """Driving the protocol by hand equals the facade, bit for bit."""
        evaluator = make_evaluator(small_taskset)
        for program in fuzzed[:4]:
            backend = make_backend(
                program, evaluator.make_context(), evaluator.engine
            )
            manual = run_protocol(
                backend,
                small_taskset,
                splits=SPLITS,
                day_indices=evaluator.train_day_indices(),
            )
            facade = evaluator.run(program, splits=SPLITS)
            for split in SPLITS:
                assert manual[split].tobytes() == facade[split].tobytes()
