"""Protocol tests: the single day-loop and its time-batched fast paths."""

import numpy as np
import pytest

from repro.core import get_initialization
from repro.engine import (
    can_batch_training,
    inference_pass,
    make_backend,
    run_protocol,
    stream_days,
    training_pass,
)

SPLITS = ("train", "valid", "test")


def protocol_predictions(evaluator, program, engine, time_batched):
    backend = make_backend(
        program, evaluator.make_context(), engine,
        address_space=evaluator.address_space,
    )
    return run_protocol(
        backend,
        evaluator.taskset,
        splits=SPLITS,
        day_indices=evaluator.train_day_indices(),
        use_update=True,
        time_batched=time_batched,
    )


class TestStreamDays:
    def test_prediction_before_reveal_ordering(self):
        features = np.arange(3 * 2 * 1 * 1, dtype=float).reshape(3, 2, 1, 1)
        labels = np.arange(3 * 2, dtype=float).reshape(3, 2)
        events = []
        stream_days(
            features, labels,
            lambda day, bar: events.append(("step", day, float(bar.sum()))),
            lambda day_labels: events.append(("reveal", float(day_labels.sum()))),
        )
        kinds = [event[0] for event in events]
        assert kinds == ["step", "reveal"] * 3
        assert [event[1] for event in events if event[0] == "step"] == [0, 1, 2]


class TestTrainingPass:
    def test_day_loop_records_visited_days_only(self, small_taskset, evaluator, dims):
        program = get_initialization("NN", dims, seed=3)
        backend = make_backend(program, evaluator.make_context(), "compiled")
        backend.run_setup()
        features = small_taskset.split_features("train")
        labels = small_taskset.split_labels("train")
        day_indices = evaluator.train_day_indices()
        out = np.full((features.shape[0], small_taskset.num_tasks), np.nan)
        training_pass(backend, features, labels, day_indices=day_indices,
                      predictions_out=out)
        visited = np.zeros(features.shape[0], dtype=bool)
        visited[day_indices] = True
        assert np.isfinite(out[visited]).all()
        assert np.isnan(out[~visited]).all()

    def test_batch_eligibility(self, evaluator, dims):
        ctx = evaluator.make_context()
        static = make_backend(get_initialization("D", dims, seed=3), ctx)
        carried = make_backend(get_initialization("NN", dims, seed=3), ctx)
        interp = make_backend(
            get_initialization("D", dims, seed=3), ctx, "interpreter"
        )
        assert can_batch_training(static, use_update=True)
        assert not can_batch_training(carried, use_update=True)
        # disabling Update() makes every fused program trainable in batch
        assert can_batch_training(carried, use_update=False)
        # the interpreter has no batched kernels at all
        assert not can_batch_training(interp, use_update=False)

    def test_batched_training_matches_day_loop_bitwise(
        self, small_taskset, evaluator, dims
    ):
        program = get_initialization("D", dims, seed=3)
        features = small_taskset.split_features("train")
        labels = small_taskset.split_labels("train")
        day_indices = evaluator.train_day_indices()
        panels = []
        for time_batched in (False, True):
            backend = make_backend(program, evaluator.make_context(), "compiled")
            backend.run_setup()
            out = np.zeros((features.shape[0], small_taskset.num_tasks))
            training_pass(backend, features, labels, day_indices=day_indices,
                          predictions_out=out, time_batched=time_batched)
            panels.append(out)
        assert panels[0].tobytes() == panels[1].tobytes()


class TestRunProtocol:
    @pytest.mark.parametrize("code", ["D", "NN", "R"])
    def test_engines_and_fast_paths_agree_bitwise(self, evaluator, dims, code):
        program = get_initialization(code, dims, seed=3)
        reference = protocol_predictions(evaluator, program, "interpreter", False)
        for engine, time_batched in (
            ("interpreter", True),   # no-op: the interpreter cannot batch
            ("compiled", False),
            ("compiled", True),
        ):
            other = protocol_predictions(evaluator, program, engine, time_batched)
            for split in SPLITS:
                assert other[split].tobytes() == reference[split].tobytes(), (
                    f"{code} diverged on {split} under "
                    f"engine={engine} time_batched={time_batched}"
                )

    def test_label_state_carries_from_valid_into_test(self, small_taskset, dims):
        """Inference splits replay chronologically on one backend.

        A program whose Predict() reads the label (ineligible for any
        batching) must see the last validation label on the first test day
        — the driver streams days in exactly that order.
        """
        from repro.core import AlphaEvaluator

        program = get_initialization("R", dims, seed=5)
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=40)
        together = evaluator.run(program, splits=("valid", "test"))
        test_alone = evaluator.run(program, splits=("test",))["test"]
        # Served together, the test split continues from the validation
        # label state; alone, it continues from the training state.  For a
        # label-reading program the two differ — which is exactly why the
        # protocol replays splits in order.
        assert together["test"].shape == test_alone.shape

    def test_train_split_request_returns_panel(self, evaluator, dims):
        program = get_initialization("D", dims, seed=3)
        predictions = evaluator.run(program, splits=("train", "valid"))
        assert predictions["train"].shape == (
            evaluator.taskset.split.train, evaluator.taskset.num_tasks
        )


class TestInferencePass:
    def test_fused_and_loop_agree(self, small_taskset, evaluator, dims):
        program = get_initialization("D", dims, seed=3)
        features = small_taskset.split_features("valid")
        labels = small_taskset.split_labels("valid")
        panels = []
        for time_batched in (False, True):
            backend = make_backend(program, evaluator.make_context(), "compiled")
            backend.run_setup()
            training_pass(
                backend,
                small_taskset.split_features("train"),
                small_taskset.split_labels("train"),
                day_indices=evaluator.train_day_indices(),
            )
            panels.append(inference_pass(backend, features, labels,
                                         time_batched=time_batched))
        assert panels[0].tobytes() == panels[1].tobytes()
