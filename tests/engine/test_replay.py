"""Bounded delta-replay parity: ``IncrementalExecutor.correct`` vs full replay.

The hard contract of :mod:`repro.engine.replay`: a point correction to an
already-served bar, delta-replayed from a retained snapshot or a bounded
lookback spin-up, must be **bitwise identical** to throwing the executor
away and fully re-warm-starting over the corrected history — for the
replayed suffix, for every day served afterwards, and across
suspend/resume round trips through serialized replay state.
"""

import numpy as np
import pytest

from repro.core import (
    AlphaProgram,
    INPUT_MATRIX,
    Operand,
    Operation,
    PREDICTION,
    get_initialization,
)
from repro.engine import IncrementalExecutor
from repro.engine.replay import (
    DEFAULT_UNBOUNDED_DEPTH,
    SnapshotRing,
    snapshot_depth_for,
)
from repro.errors import StreamError

SERVE_DAYS = 12
TAIL_DAYS = 3

S3, S4 = Operand.scalar(3), Operand.scalar(4)


def recurrent_alpha():
    """An EMA-style accumulator: unbounded lookback (``max_lookback=None``)."""
    return AlphaProgram(
        setup=[],
        predict=[
            Operation.make("get_scalar", (INPUT_MATRIX,), S4,
                           {"row": 0, "col": 0}),
            Operation.make("s_add", (S3, S4), S3),
            Operation.make("s_add", (S3, S4), PREDICTION),
        ],
        update=[],
        name="recurrent",
    )


def fuzz_programs(dims, mutator, count=6):
    bases = [get_initialization(code, dims, seed=3) for code in ("D", "NN")]
    programs = []
    while len(programs) < count:
        program = bases[len(programs) % len(bases)]
        for _ in range(len(programs) % 3):
            program = mutator.mutate(program)
        programs.append(program)
    return programs


def warm_executor(evaluator, program, engine="compiled"):
    taskset = evaluator.taskset
    executor = IncrementalExecutor(
        program, evaluator.make_context(), engine=engine
    )
    executor.warm_start(
        taskset.split_features("train"),
        taskset.split_labels("train"),
        day_indices=evaluator.train_day_indices(),
        use_update=evaluator.use_update,
    )
    return executor


def serve(executor, features, labels, start, stop):
    """Step days ``start .. stop`` and return the stacked predictions."""
    predictions = []
    for day in range(start, stop):
        predictions.append(executor.step(features[day]))
        executor.reveal(labels[day])
    return np.array(predictions)


def served_history(evaluator):
    taskset = evaluator.taskset
    features = taskset.split_features("valid")[:SERVE_DAYS + TAIL_DAYS]
    labels = taskset.split_labels("valid")[:SERVE_DAYS + TAIL_DAYS]
    return features, labels


class TestSnapshotRing:
    def state(self, tag):
        return {"tag": tag}

    def test_retains_newest_depth_entries(self):
        ring = SnapshotRing(3)
        for day in range(6):
            ring.push(day, self.state(day))
        assert len(ring) == 3
        assert [day for day, _ in ring.entries()] == [3, 4, 5]

    def test_same_day_push_replaces(self):
        ring = SnapshotRing(4)
        ring.push(2, self.state("old"))
        ring.push(2, self.state("new"))
        assert len(ring) == 1
        assert ring.entries()[0][1]["tag"] == "new"

    def test_decreasing_day_raises(self):
        ring = SnapshotRing(4)
        ring.push(5, self.state(5))
        with pytest.raises(StreamError, match="non-decreasing"):
            ring.push(3, self.state(3))

    def test_latest_at_or_before(self):
        ring = SnapshotRing(8)
        for day in (1, 4, 7):
            ring.push(day, self.state(day))
        assert ring.latest_at_or_before(5) == (4, self.state(4))
        assert ring.latest_at_or_before(7) == (7, self.state(7))
        assert ring.latest_at_or_before(0) is None

    def test_truncate_after_drops_stale_timeline(self):
        ring = SnapshotRing(8)
        for day in (1, 4, 7):
            ring.push(day, self.state(day))
        ring.truncate_after(4)
        assert [day for day, _ in ring.entries()] == [1, 4]

    def test_rebuild_from_entries(self):
        ring = SnapshotRing(4)
        for day in (2, 3, 4):
            ring.push(day, self.state(day))
        rebuilt = SnapshotRing(4, ring.entries())
        assert rebuilt.entries() == ring.entries()

    def test_snapshot_depth_for(self):
        assert snapshot_depth_for(None) == DEFAULT_UNBOUNDED_DEPTH
        assert snapshot_depth_for(0) == 1
        assert snapshot_depth_for(5) == 5


class TestCorrectionParity:
    def correct_and_compare(self, evaluator, program, correction_day,
                            engine="compiled"):
        """Delta-correct one served bar and compare to a full replay."""
        features, labels = served_history(evaluator)
        executor = warm_executor(evaluator, program, engine=engine)
        serve(executor, features, labels, 0, SERVE_DAYS)

        corrected = np.array(features, copy=True)
        corrected[correction_day] = corrected[correction_day] * 1.01
        result = executor.correct(
            correction_day, corrected[:SERVE_DAYS], labels[:SERVE_DAYS]
        )
        assert result.day == correction_day
        assert result.replayed_days == SERVE_DAYS - result.start_day
        assert result.predictions.shape == (
            SERVE_DAYS - correction_day, evaluator.taskset.num_tasks
        )

        reference = warm_executor(evaluator, program, engine=engine)
        full = serve(reference, corrected, labels, 0, SERVE_DAYS)
        assert (result.predictions.tobytes()
                == full[correction_day:].tobytes()), (
            f"{program.name}: corrected suffix diverged from full replay"
        )
        # The rolling state must serve the future identically too.
        delta_tail = serve(executor, corrected, labels,
                           SERVE_DAYS, SERVE_DAYS + TAIL_DAYS)
        full_tail = serve(reference, corrected, labels,
                          SERVE_DAYS, SERVE_DAYS + TAIL_DAYS)
        assert delta_tail.tobytes() == full_tail.tobytes(), (
            f"{program.name}: post-correction serving diverged"
        )
        return result

    def test_fuzzed_compiled_corrections_match_full_replay(
        self, evaluator, dims, mutator
    ):
        for index, program in enumerate(fuzz_programs(dims, mutator)):
            self.correct_and_compare(evaluator, program,
                                     correction_day=(3 * index) % SERVE_DAYS)

    def test_snapshot_path_replays_only_the_suffix(self, evaluator, dims):
        result = self.correct_and_compare(
            evaluator, get_initialization("NN", dims, seed=3),
            correction_day=SERVE_DAYS - 2,
        )
        assert result.mode in ("snapshot", "spinup")
        assert result.replayed_days <= 2 + 1  # suffix + at most L=1 spin-up

    def test_unbounded_program_corrects_from_ring(self, evaluator):
        result = self.correct_and_compare(
            evaluator, recurrent_alpha(),
            correction_day=SERVE_DAYS - 4,
        )
        assert result.mode == "snapshot"

    def test_interpreter_spins_up_without_snapshots(self, evaluator, dims):
        # The interpreter has no tape protocol: corrections must come out of
        # the bounded-lookback spin-up alone, still bitwise-exact.
        result = self.correct_and_compare(
            evaluator, get_initialization("NN", dims, seed=3),
            correction_day=5, engine="interpreter",
        )
        assert result.mode == "spinup"

    def test_interpreter_unbounded_correction_raises(self, evaluator):
        features, labels = served_history(evaluator)
        executor = warm_executor(evaluator, recurrent_alpha(),
                                 engine="interpreter")
        serve(executor, features, labels, 0, SERVE_DAYS)
        with pytest.raises(StreamError, match="unbounded"):
            executor.correct(3, features[:SERVE_DAYS], labels[:SERVE_DAYS])

    def test_out_of_order_corrections_truncate_the_ring(
        self, evaluator, dims
    ):
        # A second correction *earlier* than the first must not restore a
        # snapshot contaminated by the first correction's replay.
        program = get_initialization("NN", dims, seed=3)
        features, labels = served_history(evaluator)
        executor = warm_executor(evaluator, program)
        serve(executor, features, labels, 0, SERVE_DAYS)

        corrected = np.array(features, copy=True)
        for day in (9, 4):
            corrected[day] = corrected[day] * 1.02
            executor.correct(day, corrected[:SERVE_DAYS], labels[:SERVE_DAYS])

        reference = warm_executor(evaluator, program)
        full = serve(reference, corrected, labels, 0, SERVE_DAYS)
        delta_tail = serve(executor, corrected, labels,
                           SERVE_DAYS, SERVE_DAYS + TAIL_DAYS)
        full_tail = serve(reference, corrected, labels,
                          SERVE_DAYS, SERVE_DAYS + TAIL_DAYS)
        assert delta_tail.tobytes() == full_tail.tobytes()
        assert full.shape[0] == SERVE_DAYS  # reference replayed everything


class TestCorrectionGuards:
    def test_correct_before_warm_raises(self, evaluator, dims):
        program = get_initialization("D", dims, seed=3)
        executor = IncrementalExecutor(program, evaluator.make_context())
        features, labels = served_history(evaluator)
        with pytest.raises(StreamError, match="warm"):
            executor.correct(0, features[:1], labels[:1])

    def test_correct_with_pending_label_raises(self, evaluator, dims):
        features, labels = served_history(evaluator)
        executor = warm_executor(
            evaluator, get_initialization("D", dims, seed=3)
        )
        executor.step(features[0])
        with pytest.raises(StreamError, match="reveal"):
            executor.correct(0, features[:1], labels[:1])

    def test_correct_unserved_day_raises(self, evaluator, dims):
        features, labels = served_history(evaluator)
        executor = warm_executor(
            evaluator, get_initialization("D", dims, seed=3)
        )
        serve(executor, features, labels, 0, 4)
        with pytest.raises(StreamError, match="4 days served"):
            executor.correct(4, features[:4], labels[:4])

    def test_short_history_raises(self, evaluator, dims):
        features, labels = served_history(evaluator)
        executor = warm_executor(
            evaluator, get_initialization("D", dims, seed=3)
        )
        serve(executor, features, labels, 0, 4)
        with pytest.raises(StreamError, match="cover all 4 served days"):
            executor.correct(1, features[:3], labels[:3])


class TestReplayStateRoundTrip:
    def test_correct_after_resume_matches_live_executor(self, evaluator):
        # Unbounded program: a correction before the resume point is only
        # serveable if the persisted ring/anchor came back too.
        program = recurrent_alpha()
        features, labels = served_history(evaluator)
        live = warm_executor(evaluator, program)
        serve(live, features, labels, 0, SERVE_DAYS)

        state = live.suspend()
        payload = live.replay_state()

        resumed = IncrementalExecutor(program, evaluator.make_context())
        resumed.resume(state, days_served=SERVE_DAYS)
        resumed.restore_replay_state(payload)

        day = SERVE_DAYS - 5
        corrected = np.array(features, copy=True)
        corrected[day] = corrected[day] * 1.01
        from_resumed = resumed.correct(
            day, corrected[:SERVE_DAYS], labels[:SERVE_DAYS]
        )
        from_live = live.correct(
            day, corrected[:SERVE_DAYS], labels[:SERVE_DAYS]
        )
        assert (from_resumed.predictions.tobytes()
                == from_live.predictions.tobytes())
        assert from_resumed.start_day == from_live.start_day
        tail_resumed = serve(resumed, corrected, labels,
                             SERVE_DAYS, SERVE_DAYS + TAIL_DAYS)
        tail_live = serve(live, corrected, labels,
                          SERVE_DAYS, SERVE_DAYS + TAIL_DAYS)
        assert tail_resumed.tobytes() == tail_live.tobytes()

    def test_resume_without_replay_state_cannot_reach_back(self, evaluator):
        program = recurrent_alpha()
        features, labels = served_history(evaluator)
        live = warm_executor(evaluator, program)
        serve(live, features, labels, 0, SERVE_DAYS)

        resumed = IncrementalExecutor(program, evaluator.make_context())
        resumed.resume(live.suspend(), days_served=SERVE_DAYS)
        # Without the persisted ring, the resume anchor (day 12) is the only
        # snapshot — nothing covers an earlier day of an unbounded program.
        with pytest.raises(StreamError, match="full warm-start replay"):
            resumed.correct(3, features[:SERVE_DAYS], labels[:SERVE_DAYS])
