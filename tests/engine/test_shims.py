"""Deprecation shims: legacy public signatures delegate to the engine layer.

``AlphaEvaluator(..., compiled=...)``, ``EvaluationPool(..., compiled=...)``,
``EvolutionConfig.use_compile`` and ``AlphaServer`` all keep their public
surfaces; these tests pin that the shims produce results identical to the
engine-native spellings, so saved programs, examples and downstream callers
keep working unchanged.
"""

import numpy as np
import pytest

from repro.core import AlphaEvaluator, EvolutionConfig, get_initialization
from repro.engine import FleetEngine
from repro.stream import AlphaServer


@pytest.fixture()
def program(dims):
    return get_initialization("D", dims, seed=3)


class TestAlphaEvaluatorShim:
    def test_compiled_flag_still_selects_engines(self, small_taskset):
        assert AlphaEvaluator(small_taskset, compiled=True).engine == "compiled"
        assert AlphaEvaluator(small_taskset, compiled=False).engine == "interpreter"

    def test_compiled_attribute_still_readable(self, small_taskset):
        assert AlphaEvaluator(small_taskset, compiled=True).compiled is True
        assert AlphaEvaluator(small_taskset, engine="interpreter").compiled is False

    def test_flag_and_name_give_identical_results(self, small_taskset, program):
        legacy = AlphaEvaluator(small_taskset, seed=0, max_train_steps=40,
                                compiled=False)
        named = AlphaEvaluator(small_taskset, seed=0, max_train_steps=40,
                               engine="interpreter")
        left = legacy.evaluate(program)
        right = named.evaluate(program)
        assert left.fitness == right.fitness
        assert np.array_equal(left.daily_ic_valid, right.daily_ic_valid)


class TestEvolutionConfigShim:
    def test_use_compile_maps_to_engine_names(self):
        assert EvolutionConfig().execution_engine == "compiled"
        assert EvolutionConfig(use_compile=False).execution_engine == "interpreter"
        assert EvolutionConfig(engine="interpreter").execution_engine == "interpreter"

    def test_engine_name_overrides_legacy_flag(self):
        config = EvolutionConfig(use_compile=True, engine="interpreter")
        assert config.execution_engine == "interpreter"

    def test_unknown_engine_rejected_at_configuration_time(self):
        """A typo'd engine raises the config's own error type, like every
        other invalid field."""
        from repro.errors import ConfigurationError, EvolutionError

        with pytest.raises(EvolutionError, match="unknown execution engine"):
            EvolutionConfig(engine="gpu")

        from repro.experiments import ExperimentConfig

        with pytest.raises(ConfigurationError, match="unknown execution engine"):
            ExperimentConfig(engine="gpu")


class TestEvaluationPoolShim:
    def test_compiled_flag_maps_onto_pool_engine(self, small_taskset):
        from repro.parallel import EvaluationPool

        pool = EvaluationPool(small_taskset, num_workers=1, compiled=False)
        try:
            assert pool.spec.engine == "interpreter"
        finally:
            pool.close()

    def test_pool_defaults_to_compiled_engine(self, small_taskset):
        from repro.parallel import EvaluationPool

        pool = EvaluationPool(small_taskset, num_workers=1)
        try:
            assert pool.spec.engine == "compiled"
        finally:
            pool.close()


class TestAlphaServerShim:
    def test_server_results_unchanged_by_fleet_rebase(self, small_taskset, program):
        """The server (now a FleetEngine front) still equals the offline path."""
        server = AlphaServer(small_taskset, seed=0, max_train_steps=40)
        registration = server.register(program, name="alpha")
        assert not registration.deduplicated
        assert isinstance(server.fleet, FleetEngine)
        server.warm_start()

        offline = AlphaEvaluator(small_taskset, seed=0, max_train_steps=40)
        batch = offline.run(program, splits=("valid",))["valid"]
        features = small_taskset.split_features("valid")
        labels = small_taskset.split_labels("valid")
        streamed = []
        for day in range(features.shape[0]):
            streamed.append(server.on_bar(features[day])["alpha"])
            server.reveal(labels[day])
        assert np.asarray(streamed).tobytes() == batch.tobytes()

    def test_server_keeps_executor_surface(self, small_taskset, program):
        """`_executors` (key -> incremental executor) survives the re-base."""
        server = AlphaServer(small_taskset, seed=0, max_train_steps=40)
        server.register(program, name="alpha")
        server.warm_start()
        executors = list(server._executors.values())
        assert len(executors) == 1
        assert executors[0].is_warm
        assert executors[0].days_served == 0
