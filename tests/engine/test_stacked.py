"""Stacked fleet kernels: signature grouping, bitwise parity, tape interop.

The stacked executor's contract is the repo-wide one — bitwise parity with
per-program execution — plus two subsystem-specific guarantees: programs
group strictly by :func:`~repro.compile.stacked.stack_signature` (structure
shared, parameter values free), and a lane suspended from a stacked group
resumes anywhere a solo tape would.
"""

import numpy as np
import pytest

from repro.compile import StackedAlpha, compile_program, stack_signature
from repro.compile.stacked import _stacked_rank
from repro.config import make_rng
from repro.core import AlphaEvaluator, get_initialization
from repro.core.evolution import CandidateScorer
from repro.core.ops import get_op, sample_params
from repro.core.program import COMPONENTS, Operation
from repro.engine import FleetEngine
from repro.errors import ExecutionError
from repro.obs import TELEMETRY, telemetry_session


def jitter_params(program, dims, rng, name):
    """A params-only child: the parent's tape with resampled parameters.

    The mutator's params-only move produces exactly this shape of candidate,
    so a generation is dominated by members sharing their parent's stack
    signature.
    """
    child = program.copy(name=name)
    for component in COMPONENTS:
        operations = child.component(component)
        for index, operation in enumerate(operations):
            if operation.spec.param_names:
                operations[index] = Operation.make(
                    operation.spec.name, operation.inputs, operation.output,
                    sample_params(operation.spec, dims, rng),
                )
    return child


def make_generation(dims, mutator, jitter_seed=5):
    """A mixed-signature fleet: two param-jittered families plus singletons."""
    rng = make_rng(jitter_seed)
    d_base = get_initialization("D", dims, seed=3)
    nn_base = get_initialization("NN", dims, seed=3)
    r_base = get_initialization("R", dims, seed=3)
    mutant = mutator.mutate(d_base)
    return [
        d_base.copy(name="alpha_0"),
        jitter_params(d_base, dims, rng, "alpha_1"),
        jitter_params(d_base, dims, rng, "alpha_2"),
        nn_base.copy(name="alpha_3"),
        jitter_params(nn_base, dims, rng, "alpha_4"),
        r_base.copy(name="alpha_5"),
        mutant.copy(name="alpha_6"),
    ]


@pytest.fixture()
def generation(dims, mutator):
    return make_generation(dims, mutator)


def build_fleet(evaluator, programs, **kwargs):
    fleet = FleetEngine(evaluator, **kwargs)
    for program in programs:
        fleet.add(program)
    return fleet


class TestStackSignature:
    def test_param_jitter_shares_signature(self, dims):
        base = get_initialization("NN", dims, seed=3)
        child = jitter_params(base, dims, make_rng(9), "child")
        assert child.render() != base.render()  # params really resampled
        assert stack_signature(compile_program(child)) == \
            stack_signature(compile_program(base))

    def test_structural_mismatch_differs(self, dims):
        left = compile_program(get_initialization("D", dims, seed=3))
        right = compile_program(get_initialization("NN", dims, seed=3))
        assert stack_signature(left) != stack_signature(right)

    def test_parameter_values_are_masked(self, dims):
        compiled = compile_program(get_initialization("NN", dims, seed=3))
        signature = stack_signature(compiled)
        assert "=*" in signature  # parameters present, values lifted out
        assert "seed=" not in signature.replace("seed=*", "")


class TestStackedAlphaValidation:
    def test_empty_group_rejected(self, evaluator):
        with pytest.raises(ExecutionError, match="empty"):
            StackedAlpha([], evaluator.make_context())

    def test_signature_mismatch_rejected(self, dims, evaluator):
        group = [
            compile_program(get_initialization(code, dims, seed=3))
            for code in ("D", "NN")
        ]
        with pytest.raises(ExecutionError, match="signatures differ"):
            StackedAlpha(group, evaluator.make_context())

    def test_resume_length_mismatch_rejected(self, dims, mutator, evaluator):
        base = get_initialization("D", dims, seed=3)
        group = [compile_program(base),
                 compile_program(jitter_params(base, dims, make_rng(9), "j"))]
        stacked = StackedAlpha(group, evaluator.make_context())
        stacked.run_setup()
        with pytest.raises(ExecutionError, match="expected 2 tape states"):
            stacked.resume([stacked.suspend_member(0)])

    def test_resume_foreign_tape_rejected(self, dims, evaluator):
        ctx = evaluator.make_context()
        d_solo = StackedAlpha(
            [compile_program(get_initialization("D", dims, seed=3))], ctx
        )
        nn_solo = StackedAlpha(
            [compile_program(get_initialization("NN", dims, seed=3))], ctx
        )
        d_solo.run_setup()
        with pytest.raises(ExecutionError, match="different compiled"):
            nn_solo.resume([d_solo.suspend_member(0)])


class TestStackedParity:
    def test_groups_form_and_run_matches_evaluator_bitwise(
        self, evaluator, generation
    ):
        fleet = build_fleet(evaluator, generation)
        assert fleet.stack_groups >= 2  # the D and NN jitter families
        runs = fleet.run(splits=("valid", "test"))
        for program in generation:
            expected = evaluator.run(program, splits=("valid", "test"))
            for split in ("valid", "test"):
                assert runs[program.name][split].tobytes() == \
                    expected[split].tobytes()

    @pytest.mark.parametrize("jitter_seed", [5, 17, 29])
    def test_fuzzed_generations_match_unstacked_fleet(
        self, evaluator, dims, mutator, jitter_seed
    ):
        programs = make_generation(dims, mutator, jitter_seed=jitter_seed)
        stacked = build_fleet(evaluator, programs, stacked=True)
        plain = build_fleet(evaluator, programs, stacked=False)
        assert stacked.stack_groups >= 1 and plain.stack_groups == 0
        left = stacked.run(splits=("valid",))
        right = plain.run(splits=("valid",))
        for program in programs:
            assert left[program.name]["valid"].tobytes() == \
                right[program.name]["valid"].tobytes()

    def test_evaluate_matches_evaluator_evaluate(self, evaluator, generation):
        fleet = build_fleet(evaluator, generation)
        results = fleet.evaluate()
        for program in generation:
            expected = evaluator.evaluate(program)
            result = results[program.name]
            assert result.fitness == expected.fitness
            assert result.is_valid == expected.is_valid
            assert np.array_equal(
                result.daily_ic_valid, expected.daily_ic_valid
            )

    def test_stacked_serving_matches_offline_inference(
        self, small_taskset, evaluator, generation
    ):
        fleet = build_fleet(evaluator, generation)
        fleet.warm_start()
        features = small_taskset.split_features("valid")
        labels = small_taskset.split_labels("valid")
        streamed = {key: [] for key in fleet.executors}
        for day in range(features.shape[0]):
            for key, prediction in fleet.step_bar(features[day]).items():
                streamed[key].append(prediction)
            fleet.reveal(labels[day])
        for program in generation:
            batch = evaluator.run(program, splits=("valid",))["valid"]
            key = fleet.key_of(program.name)
            assert np.asarray(streamed[key]).tobytes() == batch.tobytes()

    def test_nan_features_served_identically(
        self, small_taskset, evaluator, generation
    ):
        """NaN-bearing bars exercise the raw-input sanitise guard: entries
        reading the feature matrix must keep their NaN scan even where the
        finite-closure skip applies elsewhere."""
        features = small_taskset.split_features("valid")[:4].copy()
        features[:, 0, 0, 0] = np.nan
        features[:, -1, :, -1] = np.nan
        labels = small_taskset.split_labels("valid")[:4]
        outputs = []
        for stacked in (True, False):
            fleet = build_fleet(evaluator, generation, stacked=stacked)
            fleet.warm_start()
            days = []
            for day in range(features.shape[0]):
                days.append(fleet.step_bar(features[day]))
                fleet.reveal(labels[day])
            outputs.append(days)
        for left, right in zip(*outputs):
            assert left.keys() == right.keys()
            for key in left:
                assert left[key].tobytes() == right[key].tobytes()


class TestStackedKernels:
    def test_stacked_rank_matches_registry_on_ties(self):
        rank = get_op("rank").func
        values = make_rng(3).integers(-2, 3, size=(4, 9)).astype(float)
        expected = np.stack([rank(None, (lane,), {}) for lane in values])
        assert _stacked_rank(values).tobytes() == expected.tobytes()

    def test_stacked_rank_single_column(self):
        assert _stacked_rank(np.ones((3, 1))).tobytes() == \
            np.zeros((3, 1)).tobytes()


class TestSuspendResume:
    def serve(self, fleet, features, labels, start, stop):
        days = []
        for day in range(start, stop):
            days.append(fleet.step_bar(features[day]))
            fleet.reveal(labels[day])
        return days

    @pytest.mark.parametrize("resume_stacked", [True, False])
    def test_roundtrip_across_stacking_modes(
        self, small_taskset, evaluator, generation, resume_stacked
    ):
        """A checkpoint cut from stacked buffers resumes bitwise into either
        a stacked or a per-program fleet (and the reference never pauses)."""
        features = small_taskset.split_features("valid")
        labels = small_taskset.split_labels("valid")

        reference = build_fleet(evaluator, generation)
        reference.warm_start()
        expected = self.serve(reference, features, labels, 0, 8)

        first = build_fleet(
            AlphaEvaluator(small_taskset, seed=0, max_train_steps=40),
            generation,
        )
        assert first.stack_groups >= 1
        first.warm_start()
        for day, stepped in enumerate(self.serve(first, features, labels, 0, 3)):
            for key, prediction in stepped.items():
                assert prediction.tobytes() == expected[day][key].tobytes()
        tapes = first.suspend_tapes()

        resumed = build_fleet(
            AlphaEvaluator(small_taskset, seed=0, max_train_steps=40),
            generation, stacked=resume_stacked,
        )
        resumed.resume_tapes(tapes, days_served=3)
        assert all(ex.days_served == 3 for ex in resumed.executors.values())
        for day, stepped in zip(
            range(3, 8), self.serve(resumed, features, labels, 3, 8)
        ):
            for key, prediction in stepped.items():
                assert prediction.tobytes() == expected[day][key].tobytes()

    def test_unstacked_checkpoint_resumes_into_stacked_fleet(
        self, small_taskset, evaluator, generation
    ):
        features = small_taskset.split_features("valid")
        labels = small_taskset.split_labels("valid")

        reference = build_fleet(evaluator, generation)
        reference.warm_start()
        expected = self.serve(reference, features, labels, 0, 6)

        plain = build_fleet(
            AlphaEvaluator(small_taskset, seed=0, max_train_steps=40),
            generation, stacked=False,
        )
        plain.warm_start()
        self.serve(plain, features, labels, 0, 2)
        tapes = plain.suspend_tapes()

        resumed = build_fleet(
            AlphaEvaluator(small_taskset, seed=0, max_train_steps=40),
            generation, stacked=True,
        )
        assert resumed.stack_groups >= 1
        resumed.resume_tapes(tapes, days_served=2)
        for day, stepped in zip(
            range(2, 6), self.serve(resumed, features, labels, 2, 6)
        ):
            for key, prediction in stepped.items():
                assert prediction.tobytes() == expected[day][key].tobytes()


class TestMiningPath:
    def test_score_batch_matches_per_program_evaluator(
        self, evaluator, generation
    ):
        """The scorer's internal fleet stacks transparently; its reports
        must stay bitwise-equal to solo evaluation (the mining-path parity
        the dedup/pruning cache already guarantees per program)."""
        scorer = CandidateScorer(evaluator)
        reports = scorer.score_batch(list(generation))
        for program, report in zip(generation, reports):
            expected = evaluator.evaluate(program).report
            assert report.fitness == expected.fitness
            assert report.is_valid == expected.is_valid
            same_ic = report.ic_valid == expected.ic_valid or (
                np.isnan(report.ic_valid) and np.isnan(expected.ic_valid)
            )
            assert same_ic
            assert np.asarray(report.daily_ic_valid).tobytes() == \
                np.asarray(expected.daily_ic_valid).tobytes()


class TestTelemetry:
    def test_counters_record_stacked_execution(self, evaluator, generation):
        with telemetry_session():
            fleet = build_fleet(evaluator, generation)
            fleet.run(splits=("valid",))
            snapshot = TELEMETRY.snapshot()
        groups = snapshot["engine.fleet.stack_groups"]["value"]
        members = snapshot["engine.fleet.stacked_programs"]["value"]
        assert groups >= 1
        assert members >= 2 * groups
        assert snapshot["engine.fleet.stacked_kernel_calls"]["value"] > 0
        assert not TELEMETRY.enabled

    def test_counters_silent_when_disabled(self, evaluator, generation):
        def stacked_counts():
            snapshot = TELEMETRY.snapshot()
            return tuple(
                snapshot.get(f"engine.fleet.{name}", {}).get("value", 0)
                for name in ("stack_groups", "stacked_programs",
                             "stacked_kernel_calls")
            )

        before = stacked_counts()
        fleet = build_fleet(evaluator, generation)
        fleet.run(splits=("valid",))
        assert not TELEMETRY.enabled
        assert stacked_counts() == before

    def test_server_stats_expose_stack_groups(self, small_taskset, generation):
        from repro.stream import AlphaServer

        server = AlphaServer(small_taskset, seed=0, max_train_steps=40)
        for program in generation:
            server.register(program)
        stats = server.stats()
        assert stats["stack_groups"] == server.fleet.stack_groups
        assert stats["stack_groups"] >= 1
