"""Stacked-kernel extensions: transcendental ops and program-axis chunking.

Two satellite contracts of the stacked executor
(:mod:`repro.compile.stacked`):

* the transcendental elementwise operators admitted by the import-time
  probe run **stacked** — one ``(P, …)`` kernel call — and stay bitwise
  identical to per-program execution in *every* run order of the group;
* program-axis chunking of the matrix-heavy contractions (``matmul`` /
  ``matvec`` / ``v_dot``) is a pure scheduling change: forced, disabled
  and auto-derived chunk sizes all produce byte-identical results on both
  the day-loop and the fused inference paths.
"""

import numpy as np
import pytest

from repro.compile import StackedAlpha, compile_program, stack_signature
from repro.compile.stacked import (
    _PROGRAM_CHUNK_OPS,
    _STACK_SAFE,
    _TRANSCENDENTAL_CANDIDATES,
    _probe_transcendental_stacking,
)
from repro.config import make_rng
from repro.core import (
    AlphaProgram,
    INPUT_MATRIX,
    Operand,
    Operation,
    PREDICTION,
    get_initialization,
)
from repro.core.ops import get_op, sample_params
from repro.engine import FleetEngine

SPLITS = ("valid", "test")

S3, S4, S5, S6, S7, S8, S9 = (Operand.scalar(i) for i in range(3, 10))
M1, M2 = Operand.matrix(1), Operand.matrix(2)


def transcendental_alpha(dims, rng, name):
    """A static alpha routing one input through every probe candidate."""
    return AlphaProgram(
        setup=[],
        predict=[
            Operation.make("get_scalar", (INPUT_MATRIX,), S3,
                           sample_params(get_op("get_scalar"), dims, rng)),
            Operation.make("s_sin", (S3,), S4),
            Operation.make("s_cos", (S3,), S5),
            Operation.make("s_tan", (S4,), S6),
            Operation.make("s_arcsin", (S5,), S7),
            Operation.make("s_arccos", (S5,), S8),
            Operation.make("s_arctan", (S6,), S9),
            Operation.make("s_add", (S7, S8), S7),
            Operation.make("s_exp", (S5,), S5),
            Operation.make("s_log", (S3,), S3),
            Operation.make("s_add", (S4, S5), S4),
            Operation.make("s_add", (S7, S9), S7),
            Operation.make("s_add", (S4, S7), S4),
            Operation.make("s_add", (S4, S3), PREDICTION),
        ],
        update=[],
        name=name,
    )


def matmul_alpha(dims, rng, name):
    """A static alpha whose prediction flows through a ``matmul`` lane."""
    return AlphaProgram(
        setup=[],
        predict=[
            Operation.make("transpose", (INPUT_MATRIX,), M1),
            Operation.make("matmul", (INPUT_MATRIX, M1), M2),
            Operation.make("m_mean", (M2,), S3),
            Operation.make("s_const", (), S4,
                           sample_params(get_op("s_const"), dims, rng)),
            Operation.make("s_mul", (S3, S4), PREDICTION),
        ],
        update=[],
        name=name,
    )


def family(maker, dims, count=3, seed=5):
    rng = make_rng(seed)
    programs = [maker(dims, rng, f"{maker.__name__}_{i}")
                for i in range(count)]
    signatures = {stack_signature(compile_program(p)) for p in programs}
    assert len(signatures) == 1  # one stack group, params free
    return programs


def build_fleet(evaluator, programs, **kwargs):
    fleet = FleetEngine(evaluator, **kwargs)
    for program in programs:
        fleet.add(program)
    return fleet


def solo_runs(evaluator, programs):
    return {p.name: evaluator.run(p, splits=SPLITS) for p in programs}


def assert_matches_solo(fleet_runs, solo, programs):
    for program in programs:
        for split in SPLITS:
            assert (fleet_runs[program.name][split].tobytes()
                    == solo[program.name][split].tobytes()), (
                f"{program.name} diverged on the {split} split"
            )


class TestTranscendentalStacking:
    def test_probe_admits_every_candidate_here(self):
        # The probe is deterministic per platform; on the supported NumPy
        # builds every transcendental candidate stacks bit-exactly.
        assert set(_TRANSCENDENTAL_CANDIDATES) <= _STACK_SAFE

    def test_probe_admits_only_from_its_candidates(self):
        # The probe is a filter, never an extender: its verdict is always a
        # subset of what it was asked about, and it is deterministic.
        subset = ("s_sin", "s_exp")
        admitted = _probe_transcendental_stacking(subset)
        assert admitted <= set(subset)
        assert admitted == _probe_transcendental_stacking(subset)

    @pytest.mark.parametrize("reverse", [False, True])
    def test_stacked_matches_solo_bitwise_per_run_order(
        self, evaluator, dims, reverse
    ):
        programs = family(transcendental_alpha, dims)
        solo = solo_runs(evaluator, programs)
        order = programs[::-1] if reverse else programs
        fleet = build_fleet(evaluator, order, stacked=True)
        assert fleet.stack_groups >= 1
        assert_matches_solo(fleet.run(splits=SPLITS), solo, programs)

    @pytest.mark.parametrize("reverse", [False, True])
    def test_stacked_serving_matches_solo_per_run_order(
        self, small_taskset, evaluator, dims, reverse
    ):
        programs = family(transcendental_alpha, dims)
        order = programs[::-1] if reverse else programs
        fleet = build_fleet(evaluator, order, stacked=True)
        fleet.warm_start()
        features = small_taskset.split_features("valid")[:10]
        labels = small_taskset.split_labels("valid")[:10]
        streamed = {key: [] for key in fleet.executors}
        for day in range(features.shape[0]):
            for key, prediction in fleet.step_bar(features[day]).items():
                streamed[key].append(prediction)
            fleet.reveal(labels[day])
        for program in programs:
            batch = evaluator.run(program, splits=("valid",))["valid"][:10]
            key = fleet.key_of(program.name)
            assert np.asarray(streamed[key]).tobytes() == batch.tobytes()


class TestProgramChunking:
    def chunk_family(self, dims, mutator=None):
        """matmul lanes on the fused path + matvec/v_dot on the day loop."""
        nn = get_initialization("NN", dims, seed=3)
        rng = make_rng(11)
        jitter = []
        for index in range(2):
            child = nn.copy(name=f"nn_{index}")
            for operations in (child.setup, child.predict, child.update):
                for i, operation in enumerate(operations):
                    if operation.spec.param_names:
                        operations[i] = Operation.make(
                            operation.spec.name, operation.inputs,
                            operation.output,
                            sample_params(operation.spec, dims, rng),
                        )
            jitter.append(child)
        return family(matmul_alpha, dims) + [nn.copy(name="nn_base")] + jitter

    def test_chunk_ops_cover_the_matrix_contractions(self):
        assert _PROGRAM_CHUNK_OPS == {"matmul", "matvec", "v_dot"}

    def test_auto_chunk_derivation(self, evaluator, dims):
        group = [compile_program(p) for p in family(matmul_alpha, dims)]
        auto = StackedAlpha(group, evaluator.make_context())
        assert auto.program_chunk >= 1
        disabled = StackedAlpha(group, evaluator.make_context(),
                                program_chunk=0)
        assert disabled.program_chunk == 0
        forced = StackedAlpha(group, evaluator.make_context(),
                              program_chunk=2)
        assert forced.program_chunk == 2

    def test_forced_chunk_matches_unchunked_bitwise(self, evaluator, dims):
        programs = self.chunk_family(dims)
        solo = solo_runs(evaluator, programs)
        chunked = build_fleet(evaluator, programs, stacked=True,
                              program_chunk=2)
        monolithic = build_fleet(evaluator, programs, stacked=True,
                                 program_chunk=0)
        assert chunked.stack_groups >= 2
        left = chunked.run(splits=SPLITS)
        right = monolithic.run(splits=SPLITS)
        assert_matches_solo(left, solo, programs)
        assert_matches_solo(right, solo, programs)

    def test_chunked_serving_matches_unchunked_bitwise(
        self, small_taskset, evaluator, dims
    ):
        programs = self.chunk_family(dims)
        features = small_taskset.split_features("valid")[:8]
        labels = small_taskset.split_labels("valid")[:8]
        streams = []
        for chunk in (2, 0):
            fleet = build_fleet(evaluator, programs, stacked=True,
                                program_chunk=chunk)
            fleet.warm_start()
            streamed = {}
            for day in range(features.shape[0]):
                for key, prediction in fleet.step_bar(features[day]).items():
                    streamed.setdefault(key, []).append(prediction)
                fleet.reveal(labels[day])
            streams.append({
                key: np.asarray(days) for key, days in streamed.items()
            })
        chunked, monolithic = streams
        assert chunked.keys() == monolithic.keys()
        for key in chunked:
            assert chunked[key].tobytes() == monolithic[key].tobytes()
