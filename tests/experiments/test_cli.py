"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    build_inspect_parser,
    build_ops_parser,
    build_parser,
    build_serve_parser,
    main,
    resolve_config,
    resolve_serve_config,
)
from repro.core import Dimensions, domain_expert_alpha
from repro.experiments import LAPTOP, SMOKE


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.scale == "laptop"
        assert args.output is None

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "huge"])


class TestResolveConfig:
    def test_scale_selection(self):
        args = build_parser().parse_args(["table1", "--scale", "smoke"])
        assert resolve_config(args) == SMOKE

    def test_no_overrides_returns_builtin(self):
        args = build_parser().parse_args(["table1"])
        assert resolve_config(args) == LAPTOP

    def test_overrides_applied(self):
        args = build_parser().parse_args(
            ["table2", "--scale", "smoke", "--stocks", "44", "--candidates", "99",
             "--rounds", "2", "--seed", "123"]
        )
        config = resolve_config(args)
        assert config.num_stocks == 44
        assert config.max_candidates == 99
        assert config.num_rounds == 2
        assert config.search_seed == 123

    def test_parallel_overrides_applied(self, tmp_path):
        args = build_parser().parse_args(
            ["table1", "--scale", "smoke", "--workers", "2", "--islands", "4",
             "--checkpoint", str(tmp_path)]
        )
        config = resolve_config(args)
        assert config.num_workers == 2
        assert config.num_islands == 4
        assert config.checkpoint_dir == str(tmp_path)
        evolution = config.evolution_config()
        assert evolution.num_workers == 2
        assert evolution.num_islands == 4

    def test_parallel_defaults_are_serial(self):
        config = resolve_config(build_parser().parse_args(["table1"]))
        assert config.num_workers == 1
        assert config.num_islands == 1
        assert config.checkpoint_dir is None

    def test_compile_default_on(self):
        config = resolve_config(build_parser().parse_args(["table1"]))
        assert config.use_compile is True
        assert config.evolution_config().use_compile is True

    def test_no_compile_escape_hatch(self):
        args = build_parser().parse_args(["table1", "--no-compile"])
        config = resolve_config(args)
        assert config.use_compile is False
        assert config.evolution_config().use_compile is False
        assert config.evolution_config().execution_engine == "interpreter"

    def test_engine_flag_selects_engine(self):
        args = build_parser().parse_args(["table1", "--engine", "interpreter"])
        config = resolve_config(args)
        assert config.engine == "interpreter"
        assert config.evolution_config().execution_engine == "interpreter"

    def test_engine_defaults_to_compiled(self):
        config = resolve_config(build_parser().parse_args(["table1"]))
        assert config.engine is None
        assert config.evolution_config().execution_engine == "compiled"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--engine", "gpu"])


class TestMain:
    def test_table1_end_to_end(self, capsys, tmp_path):
        exit_code = main([
            "table1", "--scale", "smoke", "--stocks", "40", "--candidates", "60",
            "--output", str(tmp_path), "--show-reference",
        ])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "Table 1" in captured
        assert "alpha_AE_D_0" in captured
        assert "Paper reference" in captured
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload["experiment"] == "table1"
        assert len(payload["rows"]) == 3


class TestInspect:
    def write_program(self, tmp_path):
        program = domain_expert_alpha(Dimensions(13, 13))
        path = tmp_path / "alpha.json"
        path.write_text(program.to_json())
        return path

    def test_inspect_renders_all_sections(self, capsys, tmp_path):
        path = self.write_program(tmp_path)
        exit_code = main(["inspect", str(path)])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "## original" in captured
        assert "## pruned" in captured
        assert "## compiled (execution pipeline)" in captured
        assert "## canonical IR (fingerprint pipeline)" in captured
        # per-pass statistics for every optimiser pass
        for name in ("fold", "canonicalize", "cse", "dse"):
            assert f"pass {name}:" in captured
        assert "fused batched inference: yes" in captured
        # the expert alpha's two placeholder constants are pruned
        assert "removed 2 of 6 operations" in captured

    def test_inspect_missing_file(self, capsys, tmp_path):
        exit_code = main(["inspect", str(tmp_path / "nope.json")])
        assert exit_code == 2
        assert "no such program file" in capsys.readouterr().err

    def test_inspect_parser_requires_program(self):
        with pytest.raises(SystemExit):
            build_inspect_parser().parse_args([])


class TestOps:
    def test_ops_prints_full_registry(self, capsys):
        from repro.core.ops import OP_REGISTRY

        exit_code = main(["ops"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        for name in OP_REGISTRY:
            assert name in captured
        assert f"{len(OP_REGISTRY)} operators" in captured
        # the table header names every documented column
        for column in ("name", "kind", "arity", "signature", "params",
                       "components"):
            assert column in captured

    def test_ops_kind_filter(self, capsys):
        exit_code = main(["ops", "--kind", "relation"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "relation_rank" in captured
        assert "s_add" not in captured

    def test_ops_component_filter(self, capsys):
        from repro.core.ops import list_ops

        exit_code = main(["ops", "--component", "setup"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert f"{len(list_ops(component='setup'))} operators" in captured
        # the cross-sectional RelationOps are predict/update-only
        assert "relation_rank" not in captured

    def test_ops_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            build_ops_parser().parse_args(["--kind", "quantum"])

    def test_signature_reflects_registry_arity(self, capsys):
        main(["ops"])
        captured = capsys.readouterr().out
        line = next(l for l in captured.splitlines() if l.startswith("v_outer"))
        assert "(vector, vector) -> matrix" in line


class TestServe:
    def test_parser_defaults(self):
        args = build_serve_parser().parse_args([])
        assert args.scale == "laptop"
        assert args.top_k is None
        assert args.program is None

    def test_resolve_serve_config_overrides(self):
        args = build_serve_parser().parse_args(
            ["--scale", "smoke", "--top-k", "2", "--candidates", "50",
             "--stocks", "44", "--seed", "9"]
        )
        config = resolve_serve_config(args)
        assert config.serve_top_k == 2
        assert config.max_candidates == 50
        assert config.num_stocks == 44
        assert config.search_seed == 9

    def test_resolve_serve_config_default_top_k(self):
        config = resolve_serve_config(build_serve_parser().parse_args([]))
        assert config.serve_top_k == LAPTOP.serve_top_k == 3

    def test_serve_saved_programs_end_to_end(self, capsys, tmp_path):
        program = domain_expert_alpha(Dimensions(13, 13))
        path = tmp_path / "alpha.json"
        path.write_text(program.to_json())
        exit_code = main([
            "serve", "--scale", "smoke", "--program", str(path),
            "--output", str(tmp_path),
        ])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "bitwise identical" in captured
        assert "bar latency" in captured
        payload = json.loads((tmp_path / "serve.json").read_text())
        assert payload["experiment"] == "serve"
        assert payload["rows"][0]["parity"] is True
        assert payload["metadata"]["registered_alphas"] == 1

    def test_serve_missing_program_file(self, capsys, tmp_path):
        exit_code = main(["serve", "--program", str(tmp_path / "nope.json")])
        assert exit_code == 2
        assert "no such program file" in capsys.readouterr().err

    def test_serve_uniquifies_duplicate_program_names(self, capsys, tmp_path):
        """Two artifacts embedding the same name serve under distinct names."""
        program = domain_expert_alpha(Dimensions(13, 13))
        path = tmp_path / "alpha.json"
        path.write_text(program.to_json())
        exit_code = main([
            "serve", "--scale", "smoke",
            "--program", str(path), "--program", str(path),
        ])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert f"{program.name}#2" in captured
        assert "1 unique executors" in captured
