"""Tests for experiment configurations, table rendering and result recording."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentResult,
    LAPTOP,
    PAPER,
    PAPER_REFERENCE,
    SMOKE,
    format_mean_std,
    format_value,
    load_result,
    make_taskset,
    render_table,
    save_result,
)
from repro.errors import ConfigurationError


class TestExperimentConfig:
    def test_builtin_scales(self):
        assert LAPTOP.name == "laptop"
        assert SMOKE.num_stocks < LAPTOP.num_stocks
        assert PAPER.num_stocks == 1026
        assert PAPER.long_positions == 50

    def test_scaled_override(self):
        smaller = LAPTOP.scaled(num_stocks=50, max_candidates=100)
        assert smaller.num_stocks == 50
        assert smaller.max_candidates == 100
        assert smaller.num_days == LAPTOP.num_days

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_rounds=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_stocks=5)

    def test_evolution_config_overrides(self):
        config = LAPTOP.evolution_config(max_candidates=42, use_pruning=False)
        assert config.max_candidates == 42
        assert not config.use_pruning

    def test_market_config_mirrors_experiment(self):
        market = SMOKE.market_config()
        assert market.num_stocks == SMOKE.num_stocks
        assert market.num_days == SMOKE.num_days

    def test_make_taskset_cached_and_deterministic(self):
        a = make_taskset(SMOKE)
        b = make_taskset(SMOKE)
        assert a is b
        fresh = make_taskset(SMOKE, use_cache=False)
        np.testing.assert_allclose(a.labels, fresh.labels)

    def test_taskset_split_matches_config(self):
        taskset = make_taskset(SMOKE)
        assert taskset.split == SMOKE.split

    def test_scaled_unknown_field_names_the_config(self):
        """Rebuild paths must say which config produced the error."""
        with pytest.raises(ConfigurationError, match="'smoke'.*num_stokcs"):
            SMOKE.scaled(num_stokcs=11)

    def test_market_overrides_reach_market_config(self):
        config = SMOKE.scaled(market_overrides=(("market_vol", 0.02),))
        assert config.market_config().market_vol == 0.02

    def test_unknown_market_override_names_the_config(self):
        config = SMOKE.scaled(name="bad-market",
                              market_overrides=(("market_volatility", 0.02),))
        with pytest.raises(ConfigurationError, match="'bad-market'"):
            config.market_config()

    def test_structural_market_override_rejected(self):
        config = SMOKE.scaled(market_overrides=(("num_stocks", 10),))
        with pytest.raises(ConfigurationError, match="ExperimentConfig field"):
            config.market_config()

    def test_data_backend_errors_name_the_config(self):
        from repro.data import DataSpec

        config = SMOKE.scaled(name="file-no-path", data=DataSpec(kind="file"))
        with pytest.raises(ConfigurationError, match="'file-no-path'"):
            config.data_backend()

    def test_make_taskset_through_resampled_backend(self):
        from repro.data import DataSpec

        config = SMOKE.scaled(num_days=420, split=None,
                              data=DataSpec(frequency="weekly"))
        taskset = make_taskset(config, use_cache=False)
        assert 3 <= taskset.num_samples < 100


class TestTables:
    def test_format_value(self):
        assert format_value(None) == "NA"
        assert format_value(float("nan")) == "NA"
        assert format_value(1.23456789, decimals=3) == "1.235"
        assert format_value("alpha_AE_D_0") == "alpha_AE_D_0"

    def test_format_mean_std(self):
        assert format_mean_std(1.5, 0.25, decimals=2) == "1.50+/-0.25"

    def test_render_table_layout(self):
        rows = [
            {"alpha": "alpha_D_0", "sharpe": 1.0, "ic": 0.01},
            {"alpha": "alpha_AE_D_0", "sharpe": 2.0},
        ]
        text = render_table(rows, [("alpha", "Alpha"), ("sharpe", "Sharpe"), ("ic", "IC")],
                            title="Table X")
        lines = text.splitlines()
        assert lines[0] == "Table X"
        assert "Alpha" in lines[1] and "Sharpe" in lines[1]
        assert "NA" in lines[4]  # missing IC for the second row

    def test_render_table_empty_rows(self):
        text = render_table([], [("alpha", "Alpha")])
        assert "Alpha" in text


class TestRecorder:
    def test_save_and_load_roundtrip(self, tmp_path):
        result = ExperimentResult(
            experiment="table1",
            rows=[{"alpha": "a", "sharpe": 1.0, "ic": float("nan"),
                   "series": np.array([1.0, 2.0])}],
            rendered="table text",
            metadata={"config": "smoke"},
        )
        path = save_result(result, tmp_path)
        assert path.name == "table1.json"
        loaded = load_result(path)
        assert loaded.experiment == "table1"
        assert loaded.rows[0]["alpha"] == "a"
        assert loaded.rows[0]["ic"] is None          # NaN serialised as null
        assert loaded.rows[0]["series"] == [1.0, 2.0]
        assert loaded.rendered == "table text"

    def test_paper_reference_contains_all_experiments(self):
        assert {"table1", "table2", "table4", "table5", "table6"} <= set(PAPER_REFERENCE)
        assert PAPER_REFERENCE["table1"][1]["alpha"] == "alpha_AE_D_0"
