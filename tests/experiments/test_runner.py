"""Integration tests for the experiment runners (tiny budgets).

These tests exercise the full table/figure pipelines end-to-end on a very
small configuration; they check structure and internal consistency rather
than the magnitude of the results (that is what ``benchmarks/`` and
EXPERIMENTS.md are for).
"""

import numpy as np
import pytest

from repro.experiments import (
    GeneticStudy,
    SMOKE,
    run_figure6,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table6,
)
from repro.experiments.runner import run_study

TINY = SMOKE.scaled(
    name="tiny",
    num_stocks=40,
    num_days=260,
    population_size=8,
    tournament_size=3,
    max_candidates=60,
    max_train_steps=20,
    num_rounds=2,
    gp_population_size=10,
    gp_max_candidates=60,
    round_time_budget_seconds=0.5,
    pruning_time_budget_seconds=0.5,
    nn_num_seeds=1,
    nn_epochs=1,
)


@pytest.fixture(scope="module")
def tiny_study():
    return run_study(TINY, initializations=("D", "R"))


class TestMiningStudy:
    def test_rounds_and_accepted(self, tiny_study):
        assert len(tiny_study.rounds) == TINY.num_rounds
        assert len(tiny_study.session.accepted) == TINY.num_rounds
        for record in tiny_study.rounds:
            assert record.best_code in record.results

    def test_last_round_uses_accepted_initializations(self, tiny_study):
        last = tiny_study.rounds[-1]
        assert all(code.startswith("B") for code in last.results)

    def test_rows_structure(self, tiny_study):
        rows = tiny_study.rows()
        assert len(rows) >= TINY.num_rounds
        for row in rows:
            assert {"alpha", "sharpe", "ic", "correlation", "round"} <= set(row)

    def test_correlation_reported_after_first_round(self, tiny_study):
        later_rows = [row for row in tiny_study.rows() if row["round"] > 0]
        assert all(np.isfinite(row["correlation"]) for row in later_rows)


class TestGeneticStudy:
    def test_rounds_structure(self):
        study = GeneticStudy(TINY, use_time_budget=True)
        rounds = study.run(2)
        assert len(rounds) == 2
        assert rounds[0].name == "alpha_G_0"
        assert np.isfinite(rounds[0].sharpe)

    def test_bad_rounds_lead_to_skip(self):
        study = GeneticStudy(TINY, stop_after_bad_rounds=1, bad_sharpe_threshold=np.inf)
        rounds = study.run(3)
        # With an impossible threshold every round counts as bad, so the later
        # rounds are skipped and reported as NA.
        assert rounds[-1].skipped


class TestTableRunners:
    def test_table1_rows(self):
        result = run_table1(TINY)
        names = [row["alpha"] for row in result.rows]
        assert names == ["alpha_D_0", "alpha_AE_D_0", "alpha_G_0"]
        assert "Table 1" in result.rendered
        assert np.isnan(result.rows[0]["correlation"])

    def test_table2_interleaves_ae_and_gp(self):
        result = run_table2(TINY.scaled(num_rounds=2))
        names = [row["alpha"] for row in result.rows]
        assert "alpha_AE_D_0" in names[0]
        assert any(name.startswith("alpha_G_") for name in names)

    def test_table3_uses_study(self, tiny_study):
        result = run_table3(TINY, study=tiny_study)
        assert len(result.rows) == len(tiny_study.rows())
        assert result.metadata["best_per_round"]

    def test_table4_pairs_ablation_rows(self, tiny_study):
        result = run_table4(TINY, study=tiny_study)
        names = [row["alpha"] for row in result.rows]
        assert len(names) == 2 * TINY.num_rounds
        assert names[1] == f"{names[0]}_P"

    def test_table6_reports_searched_counts(self):
        result = run_table6(TINY, initializations=("D",))
        assert len(result.rows) == 2
        with_pruning, without_pruning = result.rows
        assert with_pruning["pruning"] and not without_pruning["pruning"]
        assert with_pruning["searched"] > 0
        assert without_pruning["alpha"].endswith("_N")
        assert with_pruning["searched"] >= without_pruning["searched"]

    def test_figure6_trajectories(self, tiny_study):
        result = run_figure6(TINY, study=tiny_study)
        assert set(result.metadata["series"]) == {
            record.best.name for record in tiny_study.rounds
        }
        for row in result.rows:
            assert row["at_100"] >= row["at_25"] - 1e-12
