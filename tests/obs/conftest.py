"""Telemetry tests share one process-wide switchboard; keep it clean."""

from __future__ import annotations

import pytest

from repro.obs import TELEMETRY


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every obs test starts and ends with telemetry off and empty."""
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()
