"""Metrics registry semantics: counters, gauges, bounded histograms."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_instrument_table,
)


class TestCounter:
    def test_increments_and_returns_value(self):
        counter = Counter("c")
        assert counter.inc() == 1
        assert counter.inc(4) == 5
        assert counter.value == 5

    def test_zero_increment_is_allowed(self):
        counter = Counter("c")
        assert counter.inc(0) == 0

    def test_rejects_negative_increments(self):
        counter = Counter("c")
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            counter.inc(-1)

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(3)
        assert counter.snapshot() == {"type": "counter", "value": 3}


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("g")
        gauge.set(1.5)
        gauge.set(2.5)
        assert gauge.snapshot() == {"type": "gauge", "value": 2.5}


class TestInstrumentNames:
    @pytest.mark.parametrize("bad", ["", "has space", "tab\tname"])
    def test_rejects_empty_or_whitespace_names(self, bad):
        with pytest.raises(ObservabilityError, match="instrument names"):
            Counter(bad)


class TestHistogram:
    def test_exact_stats_small_stream(self):
        histogram = Histogram("h")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.mean == 2.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert sorted(histogram.values) == [1.0, 2.0, 3.0]

    def test_percentiles_match_numpy_below_reservoir_bound(self):
        histogram = Histogram("h", reservoir_size=256)
        rng = np.random.default_rng(5)
        data = rng.normal(size=100)
        for value in data:
            histogram.observe(value)
        for p in (0, 25, 50, 95, 99, 100):
            assert histogram.percentile(p) == pytest.approx(
                float(np.percentile(data, p)), abs=1e-12
            )

    def test_memory_is_bounded_but_exact_stats_are_not_sampled(self):
        histogram = Histogram("h", reservoir_size=64)
        for value in range(10_000):
            histogram.observe(float(value))
        assert len(histogram.values) == 64
        assert histogram.count == 10_000
        assert histogram.total == sum(float(v) for v in range(10_000))
        assert histogram.min == 0.0
        assert histogram.max == 9999.0

    def test_reservoir_stays_representative(self):
        # Uniform stream: the sampled median must land near the true one.
        histogram = Histogram("h", reservoir_size=128)
        for value in range(10_000):
            histogram.observe(float(value))
        assert abs(histogram.percentile(50) - 5000.0) < 1500.0

    def test_empty_histogram_snapshot_is_defined(self):
        state = Histogram("h").snapshot()
        assert state["count"] == 0
        assert state["min"] == 0.0 and state["max"] == 0.0
        assert state["p50"] == 0.0

    def test_snapshot_reports_percentiles(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        state = histogram.snapshot()
        assert state["type"] == "histogram"
        assert state["p50"] == pytest.approx(50.5)
        assert state["p95"] == pytest.approx(95.05)
        assert state["p99"] == pytest.approx(99.01)

    def test_rejects_nonpositive_reservoir(self):
        with pytest.raises(ObservabilityError, match="positive reservoir"):
            Histogram("h", reservoir_size=0)

    def test_observing_never_touches_global_random_state(self):
        # The parity contract at the instrument level: reservoir eviction
        # uses a private PRNG, so global random/NumPy draws are unaffected.
        random.seed(123)
        np_state = np.random.default_rng(9)
        expected_py = random.Random(123).random()
        expected_np = np.random.default_rng(9).normal()
        histogram = Histogram("h", reservoir_size=4)
        for value in range(1000):
            histogram.observe(float(value))
        assert random.random() == expected_py
        assert np_state.normal() == expected_np

    def test_same_name_same_stream_is_deterministic(self):
        def fill():
            histogram = Histogram("h", reservoir_size=16)
            for value in range(5000):
                histogram.observe(float(value))
            return histogram.values

        assert fill() == fill()


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ObservabilityError, match="is a counter"):
            registry.gauge("a")

    def test_names_and_membership_in_creation_order(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["b", "a"]
        assert "b" in registry and "missing" not in registry
        assert len(registry) == 2
        assert registry.get("missing") is None

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(2)
        registry.histogram("lat").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["calls"]["value"] == 2
        assert snapshot["lat"]["count"] == 1
        registry.reset()
        assert len(registry) == 0
        assert registry.snapshot() == {}


class TestRenderInstrumentTable:
    def test_renders_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(7)
        registry.gauge("rate").set(1.25)
        registry.histogram("lat").observe(2.0)
        table = render_instrument_table(registry.snapshot())
        assert "calls" in table and "counter" in table and "7" in table
        assert "rate" in table and "1.25" in table
        assert "lat" in table and "p95" in table

    def test_empty_snapshot(self):
        assert "no instruments" in render_instrument_table({})
