"""The telemetry parity contract: observing never changes a prediction bit.

Fuzzed programs run with telemetry disabled and enabled on all four
execution paths — reference interpreter, compiled day-loop, time-batched
compiled, FleetEngine — and every panel must match byte for byte.  The
enabled runs must also actually *record* (otherwise this test would pass
vacuously with dead instrumentation).
"""

from __future__ import annotations

import pytest

from repro.core import AlphaEvaluator, get_initialization
from repro.engine import FleetEngine
from repro.obs import TELEMETRY, telemetry_session

SPLITS = ("valid", "test")


def fuzz_programs(dims, mutator, count=8):
    bases = [get_initialization(code, dims, seed=3) for code in ("D", "NN", "R")]
    programs = []
    while len(programs) < count:
        program = bases[len(programs) % len(bases)]
        for _ in range(len(programs) % 4):
            program = mutator.mutate(program)
        programs.append(program.copy(name=f"fuzz_{len(programs)}"))
    return programs


def panels_all_paths(taskset, programs) -> dict[str, bytes]:
    """``"<program>/<path>/<split>"`` → prediction bytes across 4 paths."""

    def make_evaluator(**kwargs):
        return AlphaEvaluator(taskset, seed=0, max_train_steps=40, **kwargs)

    interpreter = make_evaluator(engine="interpreter")
    compiled_loop = make_evaluator(engine="compiled", time_batched=False)
    compiled_batched = make_evaluator(engine="compiled", time_batched=True)
    fleet = FleetEngine(make_evaluator())
    for program in programs:
        fleet.add(program)
    fleet_runs = fleet.run(splits=SPLITS)

    panels: dict[str, bytes] = {}
    for program in programs:
        paths = {
            "interpreter": interpreter.run(program, splits=SPLITS),
            "compiled-loop": compiled_loop.run(program, splits=SPLITS),
            "time-batched": compiled_batched.run(program, splits=SPLITS),
            "fleet": fleet_runs[program.name],
        }
        for label, predictions in paths.items():
            for split in SPLITS:
                panels[f"{program.name}/{label}/{split}"] = (
                    predictions[split].tobytes()
                )
    return panels


@pytest.fixture()
def fuzzed(dims, mutator):
    return fuzz_programs(dims, mutator)


class TestTelemetryParity:
    def test_enabling_telemetry_changes_no_bit_on_any_path(
        self, small_taskset, fuzzed
    ):
        TELEMETRY.disable()
        disabled = panels_all_paths(small_taskset, fuzzed)
        with telemetry_session():
            enabled = panels_all_paths(small_taskset, fuzzed)
            snapshot = TELEMETRY.snapshot()

        assert disabled.keys() == enabled.keys()
        for key, reference in disabled.items():
            assert enabled[key] == reference, (
                f"telemetry changed predictions: {key}"
            )

        # The enabled pass must have recorded real kernel activity — this
        # guards against the contract passing because nothing is hooked up.
        assert snapshot["engine.kernel.loop_calls"]["value"] > 0
        assert snapshot["engine.kernel.batched_calls"]["value"] > 0
        assert snapshot["compile.programs"]["value"] > 0

    def test_disabled_run_records_nothing(self, small_taskset, fuzzed):
        TELEMETRY.disable()
        TELEMETRY.reset()
        panels_all_paths(small_taskset, fuzzed[:2])
        assert TELEMETRY.snapshot() == {}
        assert TELEMETRY.tracer.tree() == []
