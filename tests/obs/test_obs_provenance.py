"""Run-record provenance: hashing, round trips, the stats CLI and the
recorder integration."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import main, run_stats_command
from repro.errors import ObservabilityError
from repro.experiments.recorder import ExperimentResult, load_result, save_result
from repro.obs import (
    RunRecord,
    TELEMETRY,
    build_run_record,
    config_hash,
    git_describe,
    host_info,
    load_run_record,
    render_run_record,
    save_run_record,
    telemetry_session,
)
from repro.obs.provenance import RUN_RECORD_VERSION


@dataclasses.dataclass
class FakeConfig:
    name: str = "smoke"
    num_stocks: int = 40


def sample_record() -> RunRecord:
    with telemetry_session():
        TELEMETRY.counter("engine.kernel.loop_calls").inc(3)
        TELEMETRY.histogram("serve.bar_latency_ms").observe(0.2)
        with TELEMETRY.span("serve.mine", top_k=2):
            with TELEMETRY.span("search.run"):
                pass
        return build_run_record(
            "serve",
            config=FakeConfig(),
            data_key="synthetic/40",
            engine="fleet-compiled",
            phase_seconds={"mine": 1.5, "compile": 0.2, "serve": 0.3},
            metadata={"parity": True},
        )


class TestConfigHash:
    def test_stable_and_sensitive_for_dataclasses(self):
        assert config_hash(FakeConfig()) == config_hash(FakeConfig())
        assert config_hash(FakeConfig()) != config_hash(
            FakeConfig(num_stocks=41)
        )

    def test_non_dataclass_falls_back_to_repr(self):
        assert config_hash("abc") == config_hash("abc")
        assert config_hash("abc") != config_hash("abd")


class TestHostFacts:
    def test_host_info_shape(self):
        info = host_info()
        assert set(info) == {"platform", "python", "cpu_count"}
        assert info["cpu_count"] >= 1

    def test_git_describe_never_raises(self):
        described = git_describe()
        assert described is None or isinstance(described, str)


class TestRunRecordRoundTrip:
    def test_build_pulls_telemetry_and_config(self):
        record = sample_record()
        assert record.config_name == "smoke"
        assert record.config_hash == config_hash(FakeConfig())
        assert record.metrics["engine.kernel.loop_calls"]["value"] == 3
        assert record.spans[0]["name"] == "serve.mine"
        assert record.spans[0]["children"][0]["name"] == "search.run"
        assert record.phase_seconds == {
            "mine": 1.5, "compile": 0.2, "serve": 0.3,
        }

    def test_dict_round_trip(self):
        record = sample_record()
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record

    def test_version_mismatch_raises(self):
        payload = sample_record().to_dict()
        payload["version"] = RUN_RECORD_VERSION + 1
        with pytest.raises(ObservabilityError, match="version"):
            RunRecord.from_dict(payload)

    def test_save_load_round_trip(self, tmp_path):
        record = sample_record()
        path = save_run_record(record, tmp_path / "sub" / "record.json")
        assert path.exists()
        assert load_run_record(path) == record

    def test_load_accepts_result_json_with_embedded_record(self, tmp_path):
        record = sample_record()
        path = tmp_path / "result.json"
        path.write_text(json.dumps({
            "experiment": "serve",
            "rows": [],
            "rendered": "",
            "run_record": record.to_dict(),
        }))
        assert load_run_record(path) == record

    def test_load_rejects_unrelated_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(ObservabilityError, match="neither a run record"):
            load_run_record(path)


class TestRenderRunRecord:
    def test_report_contains_all_sections(self):
        text = render_run_record(sample_record())
        assert "# run record: serve" in text
        assert "config: smoke" in text
        assert "engine: fleet-compiled" in text
        assert "## phases" in text and "mine" in text and "75.0%" in text
        assert "## span tree" in text and "serve.mine" in text
        assert "## instruments" in text
        assert "engine.kernel.loop_calls" in text

    def test_minimal_record_renders(self):
        text = render_run_record(RunRecord(experiment="bare"))
        assert "bare" in text
        assert "(no spans recorded)" in text
        assert "(no instruments recorded)" in text


class TestStatsCli:
    def test_round_trip_through_the_cli(self, tmp_path, capsys):
        path = save_run_record(sample_record(), tmp_path / "record.json")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# run record: serve" in out
        assert "serve.mine" in out
        assert "engine.kernel.loop_calls" in out

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        assert run_stats_command([str(tmp_path / "absent.json")]) == 2
        assert "no such record" in capsys.readouterr().err

    def test_non_record_json_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("{\"rows\": []}")
        assert run_stats_command([str(path)]) == 2
        assert "error" in capsys.readouterr().err


class TestRecorderIntegration:
    def test_save_result_writes_runrecord_sidecar(self, tmp_path):
        record = sample_record()
        result = ExperimentResult(
            experiment="serve",
            rows=[{"alpha": "a", "sharpe": 1.0}],
            rendered="table",
            run_record=record,
        )
        path = save_result(result, tmp_path)
        sidecar = tmp_path / "serve.runrecord.json"
        assert sidecar.exists()
        assert load_run_record(sidecar) == record
        # ... and the result JSON itself embeds the record for repro stats.
        assert load_run_record(path) == record
        loaded = load_result(path)
        assert loaded.run_record == record

    def test_results_without_record_stay_unchanged(self, tmp_path):
        result = ExperimentResult(
            experiment="table1", rows=[], rendered="",
        )
        path = save_result(result, tmp_path)
        assert not (tmp_path / "table1.runrecord.json").exists()
        assert "run_record" not in json.loads(path.read_text())
        assert load_result(path).run_record is None
