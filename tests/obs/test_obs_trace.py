"""Tracer semantics: nesting, exception safety, the disabled fast path,
telemetry sessions and structured events."""

from __future__ import annotations

import logging

import pytest

from repro.obs import (
    TELEMETRY,
    Tracer,
    get_telemetry,
    log_event,
    render_span_tree,
    telemetry_session,
)


def enabled_tracer() -> Tracer:
    tracer = Tracer()
    tracer.enabled = True
    return tracer


class TestTracer:
    def test_spans_nest_by_runtime_containment(self):
        tracer = enabled_tracer()
        with tracer.span("outer"):
            with tracer.span("inner", step=1):
                pass
            with tracer.span("inner", step=2):
                pass
        tree = tracer.tree()
        assert len(tree) == 1
        outer = tree[0]
        assert outer["name"] == "outer"
        assert [child["name"] for child in outer["children"]] == [
            "inner", "inner",
        ]
        assert outer["children"][0]["attrs"] == {"step": 1}
        assert outer["seconds"] >= sum(
            child["seconds"] for child in outer["children"]
        )

    def test_exception_closes_span_and_propagates(self):
        tracer = enabled_tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise ValueError("boom")
        assert tracer.depth == 0  # nothing left open
        tree = tracer.tree()
        assert tree[0]["error"] is True
        failing = tree[0]["children"][0]
        assert failing["error"] is True
        assert failing["seconds"] >= 0.0

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        first = tracer.span("a")
        second = tracer.span("b", attr=1)
        assert first is second  # one shared object: no per-call allocation
        with first:
            pass
        assert tracer.tree() == []

    def test_reset_drops_everything(self):
        tracer = enabled_tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.tree() == []
        assert tracer.depth == 0


class TestRenderSpanTree:
    def test_renders_nested_tree_with_attrs_and_errors(self):
        tracer = enabled_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("run", scale="smoke"):
                with tracer.span("step"):
                    raise RuntimeError
        text = render_span_tree(tracer.tree())
        assert "run" in text and "scale=smoke" in text
        assert "  step" in text  # indented child
        assert "[error]" in text

    def test_empty_tree(self):
        assert render_span_tree([]) == "(no spans recorded)"


class TestTelemetrySession:
    def test_collects_and_restores_disabled_state(self):
        assert not TELEMETRY.enabled
        with telemetry_session() as telemetry:
            assert telemetry is TELEMETRY
            assert TELEMETRY.enabled
            TELEMETRY.counter("x").inc()
        assert not TELEMETRY.enabled
        # recorded data survives the session for snapshotting
        assert TELEMETRY.snapshot()["x"]["value"] == 1

    def test_session_resets_previous_data(self):
        TELEMETRY.registry.counter("stale").inc()
        with telemetry_session():
            assert "stale" not in TELEMETRY.registry

    def test_nested_session_is_passthrough(self):
        with telemetry_session():
            TELEMETRY.counter("outer").inc()
            with telemetry_session():
                TELEMETRY.counter("inner").inc()
            # the inner session neither reset nor disabled
            assert TELEMETRY.enabled
            snapshot = TELEMETRY.snapshot()
            assert "outer" in snapshot and "inner" in snapshot
        assert not TELEMETRY.enabled

    def test_disabled_session_forces_telemetry_off(self):
        TELEMETRY.enable()
        with telemetry_session(enabled=False):
            assert not TELEMETRY.enabled
        assert TELEMETRY.enabled  # restored

    def test_exception_still_restores_state(self):
        with pytest.raises(RuntimeError):
            with telemetry_session():
                raise RuntimeError
        assert not TELEMETRY.enabled

    def test_get_telemetry_returns_the_singleton(self):
        assert get_telemetry() is TELEMETRY


class TestLogEvent:
    def test_emits_only_while_enabled(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            log_event("search.round", round=1)  # disabled: swallowed
            with telemetry_session():
                log_event("search.round", round=2, best=0.5)
        messages = [record.getMessage() for record in caplog.records]
        assert messages == ["search.round round=2 best=0.5"]
