"""Tests for search checkpointing and kill/resume determinism."""

import os
import pickle

import numpy as np
import pytest

from repro.core import AlphaEvaluator, EvolutionConfig, domain_expert_alpha
from repro.errors import CheckpointError
from repro.parallel import (
    CHECKPOINT_VERSION,
    CheckpointManager,
    IslandConfig,
    IslandEvolutionController,
    SearchCheckpoint,
    load_checkpoint,
    save_checkpoint,
)


def make_controller(taskset, dims, *, max_candidates=60, population_size=8,
                    num_islands=2, checkpoint_path=None, checkpoint_interval=10,
                    seed=5, correlation_filter=None, backtest_engine=None):
    evaluator = AlphaEvaluator(taskset, seed=0, max_train_steps=20)
    return IslandEvolutionController(
        evaluator=evaluator,
        dims=dims,
        correlation_filter=correlation_filter,
        backtest_engine=backtest_engine,
        config=EvolutionConfig(
            population_size=population_size,
            tournament_size=3,
            max_candidates=max_candidates,
        ),
        island_config=IslandConfig(num_islands=num_islands, migration_interval=5),
        seed=seed,
        mutation_seed=seed + 1,
        checkpoint_path=checkpoint_path,
        checkpoint_interval=checkpoint_interval,
    )


class TestCheckpointFiles:
    def test_save_load_roundtrip_restores_rng_state(self, tmp_path):
        rng = np.random.default_rng(3)
        rng.integers(0, 10, size=5)  # advance the stream
        checkpoint = SearchCheckpoint(
            version=CHECKPOINT_VERSION,
            candidates_generated=42,
            step=7,
            migrations=1,
            elapsed_seconds=1.5,
            cache=None,
            islands=[rng],
            best_ever=None,
            trajectory=[],
            initial_key="key",
            config_echo={"population_size": 8},
        )
        path = str(tmp_path / "state.ckpt")
        save_checkpoint(path, checkpoint)
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")
        loaded = load_checkpoint(path)
        assert loaded.candidates_generated == 42
        assert loaded.config_echo == {"population_size": 8}
        restored_rng = loaded.islands[0]
        assert restored_rng.bit_generator.state == rng.bit_generator.state
        assert restored_rng.integers(0, 10**6) == rng.integers(0, 10**6)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_load_rejects_foreign_payload(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_load_rejects_version_mismatch(self, tmp_path):
        checkpoint = SearchCheckpoint(
            version=CHECKPOINT_VERSION + 1,
            candidates_generated=0, step=0, migrations=0, elapsed_seconds=0.0,
            cache=None, islands=[], best_ever=None, trajectory=[],
            initial_key="key",
        )
        path = str(tmp_path / "future.ckpt")
        save_checkpoint(path, checkpoint)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_manager_cadence(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "c.ckpt"), interval=10)
        assert manager.due(0)  # first save is always due
        manager.save(SearchCheckpoint(
            version=CHECKPOINT_VERSION, candidates_generated=5, step=0,
            migrations=0, elapsed_seconds=0.0, cache=None, islands=[],
            best_ever=None, trajectory=[], initial_key="key",
        ))
        assert not manager.due(9)
        assert manager.due(15)
        assert manager.exists()


class TestKillAndResume:
    def test_killed_search_resumes_to_identical_result(
        self, small_taskset, dims, tmp_path, monkeypatch
    ):
        """A search killed mid-run and resumed from its checkpoint finishes
        with the same best program as an uninterrupted run (same seeds)."""
        initial = domain_expert_alpha(dims)
        uninterrupted = make_controller(small_taskset, dims).run(initial)

        path = str(tmp_path / "search.ckpt")
        killed = make_controller(small_taskset, dims, checkpoint_path=path)
        saves = {"count": 0}
        original_save = CheckpointManager.save

        def save_then_die(self, checkpoint):
            original_save(self, checkpoint)
            saves["count"] += 1
            if saves["count"] >= 3:
                raise KeyboardInterrupt

        monkeypatch.setattr(CheckpointManager, "save", save_then_die)
        with pytest.raises(KeyboardInterrupt):
            killed.run(initial)
        monkeypatch.setattr(CheckpointManager, "save", original_save)
        assert os.path.exists(path)

        resumed = make_controller(small_taskset, dims, checkpoint_path=path).run(
            initial, resume=True
        )
        assert resumed.candidates_generated == uninterrupted.candidates_generated
        assert resumed.best_program == uninterrupted.best_program
        assert resumed.best_report.fitness == uninterrupted.best_report.fitness
        assert resumed.cache_stats.as_dict() == uninterrupted.cache_stats.as_dict()

    def test_auto_resume_of_finished_run_is_stable(self, small_taskset, dims, tmp_path):
        initial = domain_expert_alpha(dims)
        path = str(tmp_path / "search.ckpt")
        first = make_controller(small_taskset, dims, max_candidates=30,
                                checkpoint_path=path).run(initial)
        # resume=None auto-detects the final checkpoint; the budget is spent,
        # so the rerun returns the identical result without searching again.
        rerun = make_controller(small_taskset, dims, max_candidates=30,
                                checkpoint_path=path).run(initial)
        assert rerun.best_program == first.best_program
        assert rerun.candidates_generated == first.candidates_generated

    def test_resume_with_extended_budget_continues(self, small_taskset, dims, tmp_path):
        initial = domain_expert_alpha(dims)
        path = str(tmp_path / "search.ckpt")
        make_controller(small_taskset, dims, max_candidates=30,
                        checkpoint_path=path).run(initial)
        extended = make_controller(small_taskset, dims, max_candidates=45,
                                   checkpoint_path=path).run(initial, resume=True)
        assert extended.candidates_generated == 45

    def test_resume_requires_checkpoint_configuration(self, small_taskset, dims):
        controller = make_controller(small_taskset, dims)
        with pytest.raises(CheckpointError):
            controller.run(domain_expert_alpha(dims), resume=True)

    def test_resume_rejects_mismatched_population(self, small_taskset, dims, tmp_path):
        initial = domain_expert_alpha(dims)
        path = str(tmp_path / "search.ckpt")
        make_controller(small_taskset, dims, max_candidates=30,
                        checkpoint_path=path).run(initial)
        mismatched = make_controller(small_taskset, dims, max_candidates=30,
                                     population_size=10, checkpoint_path=path)
        with pytest.raises(CheckpointError):
            mismatched.run(initial, resume=True)

    def test_resume_rejects_different_seed(self, small_taskset, dims, tmp_path):
        """A finished checkpoint must not hijack a search requested under a
        different seed: the configuration echo records the seeds."""
        initial = domain_expert_alpha(dims)
        path = str(tmp_path / "search.ckpt")
        make_controller(small_taskset, dims, max_candidates=30,
                        checkpoint_path=path).run(initial)
        reseeded = make_controller(small_taskset, dims, max_candidates=30,
                                   checkpoint_path=path, seed=99)
        with pytest.raises(CheckpointError):
            reseeded.run(initial)  # auto-resume detects the stale checkpoint

    def test_resume_rejects_changed_correlation_state(self, small_taskset, dims,
                                                      tmp_path):
        """Cached reports embed cutoff decisions; a resume under a different
        cutoff or accepted set must be refused."""
        from repro.backtest import BacktestEngine
        from repro.core import CorrelationFilter

        initial = domain_expert_alpha(dims)
        path = str(tmp_path / "search.ckpt")
        engine = BacktestEngine(small_taskset, long_k=5, short_k=5)
        make_controller(small_taskset, dims, max_candidates=30,
                        checkpoint_path=path).run(initial)

        with_filter = CorrelationFilter()
        with_filter.add_reference("accepted", np.linspace(-0.01, 0.01, 30))
        changed = make_controller(small_taskset, dims, max_candidates=30,
                                  checkpoint_path=path,
                                  correlation_filter=with_filter,
                                  backtest_engine=engine)
        with pytest.raises(CheckpointError):
            changed.run(initial)

    def test_resume_rejects_different_initial_program(self, small_taskset, dims,
                                                      tmp_path):
        from repro.core import get_initialization

        path = str(tmp_path / "search.ckpt")
        make_controller(small_taskset, dims, max_candidates=30,
                        checkpoint_path=path).run(domain_expert_alpha(dims))
        controller = make_controller(small_taskset, dims, max_candidates=30,
                                     checkpoint_path=path)
        with pytest.raises(CheckpointError):
            controller.run(get_initialization("NN", dims), resume=True)
