"""Fault-injection tests: crashed workers, poisoned batches, kill/resume.

Uses the pool's test-only ``_inject_fault_once`` hook to kill (``SIGKILL``)
or poison (raise) a worker mid-batch and asserts the robustness contract:
lost batches are retried to bitwise-identical results, errors propagate as
:class:`~repro.errors.ParallelError`, and **no** ``/dev/shm`` segment
outlives its pool on any path — including the historical silent-leak edge
where a batch raised inside the pool's ``with`` block.
"""

import os

import numpy as np
import pytest

from repro.core import AlphaEvaluator, EvolutionConfig, domain_expert_alpha
from repro.errors import ParallelError
from repro.parallel import (
    CheckpointManager,
    EvaluationPool,
    IslandConfig,
    IslandEvolutionController,
    shared_segment_names,
)
from test_shared_memory import _fuzz_batch, assert_reports_equal


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = shared_segment_names()
    yield
    assert shared_segment_names() == before


class TestWorkerCrash:
    def test_sigkilled_batch_is_retried_bitwise_identical(self, small_taskset, dims):
        batch = _fuzz_batch(dims, seed=13)
        with EvaluationPool(small_taskset, num_workers=2, evaluator_seed=0,
                            max_train_steps=15, batch_size=3) as pool:
            clean = pool.evaluate_detailed(batch)
            pool._inject_fault_once = "sigkill"
            retried = pool.evaluate_detailed(batch)
            assert pool.worker_restarts == 1
            assert pool.batches_retried >= 1
            # The pool stays usable after the rebuild.
            again = pool.evaluate_detailed(batch[:2])
        for left, right in zip(clean, retried):
            assert_reports_equal(left.report, right.report)
        for left, right in zip(clean[:2], again):
            assert_reports_equal(left.report, right.report)

    def test_retry_budget_exhaustion_raises(self, small_taskset, dims):
        batch = _fuzz_batch(dims, seed=17)[:3]
        with EvaluationPool(small_taskset, num_workers=1, evaluator_seed=0,
                            max_train_steps=15, max_batch_retries=0) as pool:
            pool._inject_fault_once = "sigkill"
            with pytest.raises(ParallelError, match="giving up"):
                pool.evaluate_detailed(batch)

    def test_worker_exception_inside_with_block_does_not_leak(
        self, small_taskset, dims
    ):
        """Regression: a batch that raises used to leave the pool's shared
        segment behind when the ``with`` block unwound."""
        batch = _fuzz_batch(dims, seed=19)[:3]
        with pytest.raises(ParallelError, match="injected"):
            with EvaluationPool(small_taskset, num_workers=2, evaluator_seed=0,
                                max_train_steps=15) as pool:
                pool._inject_fault_once = "raise"
                pool.evaluate_detailed(batch)
        assert shared_segment_names() == []

    def test_close_after_crash_unlinks(self, small_taskset, dims):
        pool = EvaluationPool(small_taskset, num_workers=1, evaluator_seed=0,
                              max_train_steps=15, max_batch_retries=0)
        pool._inject_fault_once = "sigkill"
        with pytest.raises(ParallelError):
            pool.evaluate_detailed(_fuzz_batch(dims, seed=23)[:2])
        pool.close()
        assert shared_segment_names() == []


def make_pooled_controller(taskset, dims, pool, *, checkpoint_path=None,
                           scheduler="overlap", max_candidates=48, seed=5):
    evaluator = AlphaEvaluator(taskset, seed=0, max_train_steps=15)
    return IslandEvolutionController(
        evaluator=evaluator,
        dims=dims,
        config=EvolutionConfig(
            population_size=6,
            tournament_size=3,
            max_candidates=max_candidates,
            scheduler=scheduler,
        ),
        island_config=IslandConfig(num_islands=2, migration_interval=4),
        seed=seed,
        mutation_seed=seed + 1,
        pool=pool,
        checkpoint_path=checkpoint_path,
        checkpoint_interval=12,
    )


def pool_for(taskset):
    return EvaluationPool(taskset, num_workers=2, evaluator_seed=0,
                          max_train_steps=15)


class TestKillAndResumeWithFaults:
    def test_killed_pooled_search_resumes_bitwise_identical(
        self, small_taskset, dims, tmp_path, monkeypatch
    ):
        """Kill the search process mid-run AND SIGKILL a worker during the
        resumed run: the final result must equal an uninterrupted run's,
        and no shared segment may survive either run."""
        initial = domain_expert_alpha(dims)
        with pool_for(small_taskset) as pool:
            uninterrupted = make_pooled_controller(
                small_taskset, dims, pool
            ).run(initial)

        path = str(tmp_path / "search.ckpt")
        saves = {"count": 0}
        original_save = CheckpointManager.save

        def save_then_die(self, checkpoint):
            original_save(self, checkpoint)
            saves["count"] += 1
            if saves["count"] >= 2:
                raise KeyboardInterrupt

        monkeypatch.setattr(CheckpointManager, "save", save_then_die)
        with pool_for(small_taskset) as pool:
            killed = make_pooled_controller(small_taskset, dims, pool,
                                            checkpoint_path=path)
            with pytest.raises(KeyboardInterrupt):
                killed.run(initial)
        monkeypatch.setattr(CheckpointManager, "save", original_save)
        assert os.path.exists(path)
        assert shared_segment_names() == []

        with pool_for(small_taskset) as pool:
            # Crash a worker mid-resume too: the retried batch must not
            # perturb determinism.
            pool._inject_fault_once = "sigkill"
            resumed = make_pooled_controller(
                small_taskset, dims, pool, checkpoint_path=path
            ).run(initial, resume=True)
            assert pool.worker_restarts == 1

        assert resumed.candidates_generated == uninterrupted.candidates_generated
        assert resumed.migrations == uninterrupted.migrations
        assert resumed.best_program == uninterrupted.best_program
        assert_reports_equal(resumed.best_report, uninterrupted.best_report)
        assert resumed.cache_stats.as_dict() == uninterrupted.cache_stats.as_dict()

    def test_overlap_scheduler_with_pool_matches_serial_overlap(
        self, small_taskset, dims
    ):
        """The overlap scheduler's results are pool-invariant, like the
        barrier scheduler's."""
        initial = domain_expert_alpha(dims)
        serial = make_pooled_controller(small_taskset, dims, None).run(initial)
        with pool_for(small_taskset) as pool:
            pooled = make_pooled_controller(small_taskset, dims, pool).run(initial)
        assert pooled.best_program == serial.best_program
        assert_reports_equal(pooled.best_report, serial.best_report)
        assert pooled.migrations == serial.migrations
        assert pooled.cache_stats.as_dict() == serial.cache_stats.as_dict()
