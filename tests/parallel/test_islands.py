"""Tests for the island-model evolutionary search."""

from collections import deque

import numpy as np
import pytest

from repro.core import (
    AlphaEvaluator,
    Candidate,
    EvolutionConfig,
    EvolutionController,
    FitnessReport,
    Mutator,
    domain_expert_alpha,
)
from repro.errors import EvolutionError
from repro.parallel import EvaluationPool, Island, IslandConfig, IslandEvolutionController


def make_controller(taskset, dims, *, max_candidates=60, num_islands=3,
                    population_size=8, migration_interval=5, pool=None,
                    seed=5, **kwargs):
    evaluator = AlphaEvaluator(taskset, seed=0, max_train_steps=20)
    return IslandEvolutionController(
        evaluator=evaluator,
        dims=dims,
        config=EvolutionConfig(
            population_size=population_size,
            tournament_size=3,
            max_candidates=max_candidates,
        ),
        island_config=IslandConfig(
            num_islands=num_islands, migration_interval=migration_interval
        ),
        seed=seed,
        mutation_seed=seed + 1,
        pool=pool,
        **kwargs,
    )


def fake_candidate(program, fitness):
    report = FitnessReport(
        fitness=fitness, ic_valid=fitness, daily_ic_valid=np.zeros(3), is_valid=True
    )
    return Candidate(program=program, report=report, born_at=0)


class TestIslandConfig:
    def test_validation(self):
        with pytest.raises(EvolutionError):
            IslandConfig(num_islands=0)
        with pytest.raises(EvolutionError):
            IslandConfig(migration_interval=0)
        with pytest.raises(EvolutionError):
            IslandConfig(migration_size=0)


class TestIslandEvolution:
    def test_respects_candidate_budget_exactly(self, small_taskset, dims):
        controller = make_controller(small_taskset, dims, max_candidates=50)
        result = controller.run(domain_expert_alpha(dims))
        assert result.candidates_generated == 50
        assert result.searched_alphas == 50
        assert result.num_islands == 3

    def test_population_sizes_invariant(self, small_taskset, dims):
        controller = make_controller(small_taskset, dims, max_candidates=60,
                                     migration_interval=2)
        result = controller.run(domain_expert_alpha(dims))
        assert result.migrations > 0
        for island in controller.islands:
            assert len(island.population) == controller.config.population_size

    def test_trajectory_monotone_and_aligned(self, small_taskset, dims):
        controller = make_controller(small_taskset, dims, max_candidates=40)
        result = controller.run(domain_expert_alpha(dims))
        fitness_curve = [point.best_fitness for point in result.trajectory]
        assert fitness_curve == sorted(fitness_curve)
        candidates = [point.candidates for point in result.trajectory]
        assert candidates == sorted(candidates)
        assert candidates[-1] == result.candidates_generated

    def test_deterministic_given_seeds(self, small_taskset, dims):
        result_a = make_controller(small_taskset, dims).run(domain_expert_alpha(dims))
        result_b = make_controller(small_taskset, dims).run(domain_expert_alpha(dims))
        assert result_a.best_program == result_b.best_program
        assert result_a.best_report.fitness == result_b.best_report.fitness

    def test_pool_does_not_change_results(self, small_taskset, dims):
        serial = make_controller(small_taskset, dims).run(domain_expert_alpha(dims))
        with EvaluationPool(small_taskset, num_workers=2, evaluator_seed=0,
                            max_train_steps=20) as pool:
            pooled = make_controller(small_taskset, dims, pool=pool).run(
                domain_expert_alpha(dims)
            )
        assert pooled.best_program == serial.best_program
        assert pooled.best_report.fitness == serial.best_report.fitness
        assert pooled.cache_stats.as_dict() == serial.cache_stats.as_dict()

    def test_run_is_reusable(self, small_taskset, dims):
        controller = make_controller(small_taskset, dims, max_candidates=30)
        first = controller.run(domain_expert_alpha(dims))
        second = controller.run(domain_expert_alpha(dims))
        # Fresh cache and counters per run; the RNG streams advance, so the
        # searches themselves are independent restarts.
        assert first.candidates_generated == second.candidates_generated == 30
        assert second.cache_stats.searched == 30

    def test_single_island_needs_no_migration(self, small_taskset, dims):
        controller = make_controller(small_taskset, dims, num_islands=1,
                                     max_candidates=30, migration_interval=1)
        result = controller.run(domain_expert_alpha(dims))
        assert result.migrations == 0
        assert result.num_islands == 1


class TestMigration:
    def _controller_with_fake_islands(self, small_taskset, dims, fitness_grid):
        controller = make_controller(small_taskset, dims,
                                     num_islands=len(fitness_grid))
        mutator = Mutator(dims, seed=9)
        program = domain_expert_alpha(dims)
        controller.islands = []
        for index, fitnesses in enumerate(fitness_grid):
            members = []
            for fitness in fitnesses:
                program = mutator.mutate(program)
                members.append(fake_candidate(program, fitness))
            controller.islands.append(
                Island(index=index, population=deque(members),
                       rng=np.random.default_rng(index), mutator=mutator)
            )
        return controller

    def test_ring_migration_replaces_worst(self, small_taskset, dims):
        controller = self._controller_with_fake_islands(
            small_taskset, dims,
            [[0.9, 0.5, 0.1], [0.4, 0.3, 0.2], [0.8, 0.6, 0.05]],
        )
        donors_best = [island.best for island in controller.islands]
        controller._migrate()
        for index, island in enumerate(controller.islands):
            assert len(island.population) == 3
            migrant = donors_best[(index - 1) % 3]
            assert any(member.program == migrant.program
                       for member in island.population)
        # Island 1 had no member fitter than island 0's best (0.9): its
        # worst member (0.2) must have been displaced by the migrant.
        fitnesses = sorted(candidate.fitness for candidate in
                           controller.islands[1].population)
        assert fitnesses == [0.3, 0.4, 0.9]

    def test_weaker_migrant_does_not_displace_fitter_member(self, small_taskset, dims):
        controller = self._controller_with_fake_islands(
            small_taskset, dims, [[0.2, 0.1], [0.9, 0.8]],
        )
        controller._migrate()
        # Island 1 receives island 0's best (0.2), weaker than its own worst
        # member (0.8): the migrant must be dropped, not swapped in.
        assert sorted(c.fitness for c in controller.islands[1].population) == [0.8, 0.9]
        # Island 0 receives island 1's best (0.9): its worst member (0.1)
        # must be displaced.
        assert sorted(c.fitness for c in controller.islands[0].population) == [0.2, 0.9]

    def test_migrant_already_present_is_not_duplicated(self, small_taskset, dims):
        controller = self._controller_with_fake_islands(
            small_taskset, dims, [[0.2, 0.1], [0.9, 0.8]],
        )
        # Plant island 1's best into island 0, so both rings now offer a
        # program the receiver already holds.
        shared = controller.islands[1].best
        controller.islands[0].population = deque(
            [shared, *list(controller.islands[0].population)[1:]]
        )
        before = {
            index: [candidate.program for candidate in island.population]
            for index, island in enumerate(controller.islands)
        }
        controller._migrate()
        for index, island in enumerate(controller.islands):
            assert [c.program for c in island.population] == before[index]


class TestSerialBaselineComparison:
    def test_matches_serial_controller_shape(self, small_taskset, dims):
        """Island results expose the exact EvolutionResult interface."""
        island = make_controller(small_taskset, dims, max_candidates=30)
        serial = EvolutionController(
            evaluator=AlphaEvaluator(small_taskset, seed=0, max_train_steps=20),
            mutator=Mutator(dims, seed=3),
            config=EvolutionConfig(population_size=8, tournament_size=3,
                                   max_candidates=30),
            seed=3,
        )
        island_result = island.run(domain_expert_alpha(dims))
        serial_result = serial.run(domain_expert_alpha(dims))
        for attribute in ("best_program", "best_report", "trajectory",
                          "cache_stats", "candidates_generated", "searched_alphas"):
            assert hasattr(island_result, attribute)
            assert hasattr(serial_result, attribute)
