"""Tests for the process-pool candidate evaluation."""

import numpy as np
import pytest

from repro.backtest import BacktestEngine
from repro.core import (
    AlphaEvaluator,
    CandidateScorer,
    Mutator,
    domain_expert_alpha,
    get_initialization,
)
from repro.errors import ConfigurationError, EvolutionError, ParallelError
from repro.parallel import EvaluationPool


def assert_reports_identical(got, want):
    """The pool contract: reports are bitwise identical to serial ones."""
    assert got.fitness == want.fitness
    assert got.is_valid == want.is_valid
    assert got.reason == want.reason
    assert (got.ic_valid == want.ic_valid) or (
        np.isnan(got.ic_valid) and np.isnan(want.ic_valid)
    )
    assert np.array_equal(got.daily_ic_valid, want.daily_ic_valid)


@pytest.fixture(scope="module")
def programs(dims):
    """A mixed bag of programs: valid, degenerate, and mutated variants."""
    mutator = Mutator(dims, seed=5)
    bag = [get_initialization(code, dims, seed=3) for code in ("D", "NOOP", "R", "NN")]
    program = bag[0]
    for _ in range(6):
        program = mutator.mutate(program)
        bag.append(program)
    return bag


class TestEvaluationPool:
    def test_reports_bitwise_identical_to_serial(self, small_taskset, programs):
        serial = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        expected = [serial.evaluate(program).report for program in programs]
        with EvaluationPool(small_taskset, num_workers=2, evaluator_seed=0,
                            max_train_steps=20) as pool:
            got = pool.evaluate(programs)
        assert len(got) == len(expected)
        for left, right in zip(got, expected):
            assert_reports_identical(left, right)

    def test_single_worker_matches_many_workers(self, small_taskset, programs):
        with EvaluationPool(small_taskset, num_workers=1, evaluator_seed=0,
                            max_train_steps=20, batch_size=3) as pool:
            one = pool.evaluate(programs)
        with EvaluationPool(small_taskset, num_workers=3, evaluator_seed=0,
                            max_train_steps=20, batch_size=2) as pool:
            many = pool.evaluate(programs)
        for left, right in zip(one, many):
            assert_reports_identical(left, right)

    def test_valid_returns_match_backtest_engine(self, small_taskset, dims):
        program = domain_expert_alpha(dims)
        serial = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        engine = BacktestEngine(small_taskset, long_k=5, short_k=5)
        expected = engine.portfolio_returns(
            serial.run(program, splits=("valid",))["valid"], split="valid"
        )
        with EvaluationPool(small_taskset, num_workers=2, evaluator_seed=0,
                            max_train_steps=20, long_k=5, short_k=5,
                            compute_valid_returns=True) as pool:
            evaluation = pool.evaluate_detailed([program])[0]
        assert evaluation.valid_returns is not None
        assert np.array_equal(evaluation.valid_returns, expected)

    def test_returns_empty_for_empty_input(self, small_taskset):
        with EvaluationPool(small_taskset, num_workers=1, max_train_steps=20) as pool:
            assert pool.evaluate([]) == []

    def test_closed_pool_rejects_work(self, small_taskset, dims):
        pool = EvaluationPool(small_taskset, num_workers=1, max_train_steps=20)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ParallelError):
            pool.evaluate([domain_expert_alpha(dims)])

    def test_invalid_parameters_rejected(self, small_taskset):
        with pytest.raises(ConfigurationError):
            EvaluationPool(small_taskset, num_workers=0)
        with pytest.raises(ConfigurationError):
            EvaluationPool(small_taskset, num_workers=1, batch_size=0)


class TestScorerWithPool:
    def test_pooled_scorer_matches_serial_scorer(self, small_taskset, programs):
        # Include duplicates so the fingerprint cache and the in-batch
        # aliasing are both exercised.
        batch = list(programs) + list(programs[:3])
        serial = CandidateScorer(AlphaEvaluator(small_taskset, seed=0, max_train_steps=20))
        expected = [serial.score(program) for program in batch]
        with EvaluationPool(small_taskset, num_workers=2, evaluator_seed=0,
                            max_train_steps=20) as pool:
            pooled = CandidateScorer(
                AlphaEvaluator(small_taskset, seed=0, max_train_steps=20), pool=pool
            )
            got = pooled.score_batch(batch)
        for left, right in zip(got, expected):
            assert_reports_identical(left, right)
        assert pooled.cache.stats.as_dict() == serial.cache.stats.as_dict()
        assert pooled.candidates_generated == serial.candidates_generated == len(batch)

    def test_correlation_filter_requires_returns_capable_pool(self, small_taskset, dims):
        from repro.core import CorrelationFilter

        correlation_filter = CorrelationFilter()
        correlation_filter.add_reference("ref", np.linspace(-0.01, 0.01, 30))
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        with EvaluationPool(small_taskset, num_workers=1, evaluator_seed=0,
                            max_train_steps=20) as pool:
            with pytest.raises(EvolutionError):
                CandidateScorer(evaluator, correlation_filter=correlation_filter, pool=pool)

    def test_pooled_scorer_applies_cutoff(self, small_taskset, dims):
        from repro.core import CorrelationFilter

        program = domain_expert_alpha(dims)
        evaluator = AlphaEvaluator(small_taskset, seed=0, max_train_steps=20)
        engine = BacktestEngine(small_taskset, long_k=5, short_k=5)
        reference = engine.portfolio_returns(
            evaluator.run(program, splits=("valid",))["valid"], split="valid"
        )
        correlation_filter = CorrelationFilter()
        correlation_filter.add_reference("self", reference)
        with EvaluationPool(small_taskset, num_workers=2, evaluator_seed=0,
                            max_train_steps=20, long_k=5, short_k=5,
                            compute_valid_returns=True) as pool:
            scorer = CandidateScorer(
                evaluator, correlation_filter=correlation_filter, pool=pool
            )
            report = scorer.score(program)
        assert not report.is_valid
        assert "cutoff" in report.reason
