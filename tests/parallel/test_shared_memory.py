"""Tests for the shared-memory panel store and pool/serial bitwise parity.

Covers the zero-copy :class:`~repro.parallel.shm.SharedPanelStore` contract
(publish → attach → identical read-only views), the content-signature attach
guard, cleanup on every exit path, and a seeded fuzz suite asserting that
pooled scoring is bitwise identical to the serial
:class:`~repro.core.evolution.CandidateScorer` — across engines, with
stacked dispatch on and off, over NaN-bearing panels, and with
duplicate-heavy batches.
"""

import dataclasses
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.core import AlphaEvaluator, CandidateScorer, Mutator, get_initialization
from repro.data import TaskSet
from repro.errors import SharedPanelMismatchError
from repro.parallel import (
    EvaluationPool,
    SharedPanelStore,
    panel_signature,
    shared_segment_names,
)
from repro.parallel.pool import _WorkerState


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave /dev/shm exactly as it found it."""
    before = shared_segment_names()
    yield
    assert shared_segment_names() == before


def assert_reports_equal(got, want):
    """Bitwise report equality that treats NaN as equal to NaN."""
    assert (got.fitness == want.fitness) or (
        np.isnan(got.fitness) and np.isnan(want.fitness)
    )
    assert got.is_valid == want.is_valid
    assert got.reason == want.reason
    assert (got.ic_valid == want.ic_valid) or (
        np.isnan(got.ic_valid) and np.isnan(want.ic_valid)
    )
    assert np.array_equal(
        np.asarray(got.daily_ic_valid), np.asarray(want.daily_ic_valid),
        equal_nan=True,
    )


class TestSharedPanelStore:
    def test_publish_attach_roundtrip_is_bitwise_identical(self, small_taskset):
        with SharedPanelStore.publish(
            small_taskset.features, small_taskset.labels
        ) as store:
            attached = SharedPanelStore.attach(store.handle)
            try:
                assert np.array_equal(attached.features, small_taskset.features,
                                      equal_nan=True)
                assert np.array_equal(attached.labels, small_taskset.labels,
                                      equal_nan=True)
                assert attached.features.dtype == small_taskset.features.dtype
            finally:
                attached.close()

    def test_views_are_read_only(self, small_taskset):
        with SharedPanelStore.publish(
            small_taskset.features, small_taskset.labels
        ) as store:
            with pytest.raises(ValueError):
                store.features[0, 0, 0, 0] = 1.0
            attached = SharedPanelStore.attach(store.handle)
            try:
                with pytest.raises(ValueError):
                    attached.labels[0, 0] = 1.0
            finally:
                attached.close()

    def test_close_is_idempotent_and_unlinks(self, small_taskset):
        store = SharedPanelStore.publish(
            small_taskset.features, small_taskset.labels
        )
        assert store.handle.name in shared_segment_names()
        store.close()
        store.close()
        assert store.closed
        assert store.handle.name not in shared_segment_names()

    def test_signature_covers_content(self, small_taskset):
        features = np.array(small_taskset.features)
        labels = np.array(small_taskset.labels)
        base = panel_signature(features, labels)
        assert base == panel_signature(features, labels)
        tweaked = features.copy()
        tweaked[0, 0, 0, 0] += 1e-12
        assert panel_signature(tweaked, labels) != base

    def test_attach_rejects_wrong_signature(self, small_taskset):
        with SharedPanelStore.publish(
            small_taskset.features, small_taskset.labels
        ) as store:
            stale = dataclasses.replace(store.handle, signature="0" * 64)
            with pytest.raises(SharedPanelMismatchError, match="stale"):
                SharedPanelStore.attach(stale)

    def test_attach_rejects_unlinked_store(self, small_taskset):
        store = SharedPanelStore.publish(
            small_taskset.features, small_taskset.labels
        )
        handle = store.handle
        store.close()
        with pytest.raises(SharedPanelMismatchError, match="does not exist"):
            SharedPanelStore.attach(handle)

    def test_worker_state_rejects_mismatched_spec(self, small_taskset):
        """A doctored PoolSpec must fail loudly with the named error, not
        compute on wrong data."""
        with EvaluationPool(small_taskset, num_workers=1,
                            max_train_steps=20) as pool:
            bad_panel = dataclasses.replace(pool.spec.panel, signature="f" * 64)
            bad_spec = dataclasses.replace(pool.spec, panel=bad_panel)
            with pytest.raises(SharedPanelMismatchError):
                _WorkerState.from_spec(bad_spec)

    def test_sigterm_unlinks_published_store(self, tmp_path):
        """A SIGTERMed owner process leaves no segment behind."""
        script = textwrap.dedent("""
            import numpy as np, os, sys, time
            from repro.parallel import SharedPanelStore
            store = SharedPanelStore.publish(
                np.zeros((3, 2, 2, 2)), np.zeros((3, 2))
            )
            print(store.handle.name, flush=True)
            time.sleep(60)
        """)
        env = dict(os.environ, PYTHONPATH="src")
        child = subprocess.Popen(
            [sys.executable, "-c", script], stdout=subprocess.PIPE,
            env=env, text=True, cwd=os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))),
        )
        try:
            name = child.stdout.readline().strip()
            assert name in shared_segment_names()
            child.send_signal(signal.SIGTERM)
            child.wait(timeout=30)
        finally:
            child.kill()
            child.wait()
        deadline = time.monotonic() + 10
        while name in shared_segment_names() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert name not in shared_segment_names()


def _nan_taskset(taskset: TaskSet) -> TaskSet:
    """A copy of ``taskset`` with NaNs salted through features and labels."""
    features = np.array(taskset.features)
    labels = np.array(taskset.labels)
    rng = np.random.default_rng(99)
    flat = features.reshape(-1)
    flat[rng.choice(flat.size, size=max(1, flat.size // 200), replace=False)] = np.nan
    lab = labels.reshape(-1)
    lab[rng.choice(lab.size, size=max(1, lab.size // 100), replace=False)] = np.nan
    return TaskSet(
        features=features, labels=labels, dates=taskset.dates,
        taxonomy=taskset.taxonomy, split=taskset.split, tickers=taskset.tickers,
    )


def _fuzz_batch(dims, seed: int, count: int = 8) -> list:
    """A seeded mixed batch: inits, mutants, and in-batch duplicates."""
    rng = np.random.default_rng(seed)
    mutator = Mutator(dims, seed=seed)
    bag = [get_initialization(code, dims, seed=seed)
           for code in ("D", "NOOP", "R", "NN")]
    program = bag[0]
    while len(bag) < count:
        program = mutator.mutate(program)
        bag.append(program)
    # Append duplicates of random earlier members so the fingerprint cache,
    # in-batch aliasing and duplicate-program pool batches are all exercised.
    for index in rng.integers(0, len(bag), size=3):
        bag.append(bag[int(index)])
    return bag


class TestFuzzedPoolParity:
    @pytest.mark.parametrize("engine,stacked", [
        ("compiled", True),
        ("compiled", False),
        ("interpreter", None),
    ])
    @pytest.mark.parametrize("seed", [11, 23])
    def test_pool_scorer_matches_serial_scorer(self, small_taskset, dims,
                                               engine, stacked, seed):
        batch = _fuzz_batch(dims, seed)
        serial = CandidateScorer(
            AlphaEvaluator(small_taskset, seed=0, max_train_steps=15,
                           engine=engine)
        )
        expected = serial.score_batch(batch)
        with EvaluationPool(small_taskset, num_workers=2, evaluator_seed=0,
                            max_train_steps=15, engine=engine,
                            stacked=stacked, batch_size=3) as pool:
            pooled = CandidateScorer(
                AlphaEvaluator(small_taskset, seed=0, max_train_steps=15,
                               engine=engine),
                pool=pool,
            )
            got = pooled.score_batch(batch)
        for left, right in zip(got, expected):
            assert_reports_equal(left, right)
        assert pooled.cache.stats.as_dict() == serial.cache.stats.as_dict()

    def test_parity_holds_on_nan_panels(self, small_taskset, dims):
        nan_taskset = _nan_taskset(small_taskset)
        batch = _fuzz_batch(dims, seed=31)
        serial = CandidateScorer(
            AlphaEvaluator(nan_taskset, seed=0, max_train_steps=15)
        )
        expected = serial.score_batch(batch)
        with EvaluationPool(nan_taskset, num_workers=2, evaluator_seed=0,
                            max_train_steps=15, batch_size=4) as pool:
            pooled = CandidateScorer(
                AlphaEvaluator(nan_taskset, seed=0, max_train_steps=15),
                pool=pool,
            )
            got = pooled.score_batch(batch)
        for left, right in zip(got, expected):
            assert_reports_equal(left, right)

    def test_duplicate_only_batch(self, small_taskset, dims):
        program = get_initialization("D", dims, seed=3)
        with EvaluationPool(small_taskset, num_workers=2, evaluator_seed=0,
                            max_train_steps=15, batch_size=2) as pool:
            evaluations = pool.evaluate_detailed([program] * 5)
        first = evaluations[0].report
        for evaluation in evaluations[1:]:
            assert_reports_equal(evaluation.report, first)

    def test_async_score_batch_matches_sync(self, small_taskset, dims):
        batch = _fuzz_batch(dims, seed=47)
        sync = CandidateScorer(
            AlphaEvaluator(small_taskset, seed=0, max_train_steps=15)
        )
        expected = sync.score_batch(batch)
        with EvaluationPool(small_taskset, num_workers=2, evaluator_seed=0,
                            max_train_steps=15) as pool:
            scorer = CandidateScorer(
                AlphaEvaluator(small_taskset, seed=0, max_train_steps=15),
                pool=pool,
            )
            handle = scorer.score_batch_async(batch)
            # Unrelated work may interleave here (the overlap scheduler
            # migrates); it must not perturb any report bit.
            got = handle.result()
            assert handle.result() is got  # idempotent
        for left, right in zip(got, expected):
            assert_reports_equal(left, right)
        assert sync.cache.stats.as_dict() == scorer.cache.stats.as_dict()
