"""The dirty-market scenario family and its versioned report schemas.

Golden-file regression for the two JSON layouts the dirty scenarios emit
(``AuditReport`` and ``RobustnessReport`` — versioned like ``RunRecord``,
so schema drift fails against the files under ``tests/scenarios/golden/``),
plus the ``repro scenario dirty-duplicates --output`` round trip with the
robustness bands and the persisted corruption ground truth.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.data import (
    AuditReport,
    CorruptionSpec,
    Violation,
    load_audit_report,
)
from repro.data.repair import AUDIT_REPORT_VERSION
from repro.errors import ConfigurationError, DataError
from repro.experiments import load_result
from repro.scenarios import (
    ROBUSTNESS_REPORT_VERSION,
    AlphaBand,
    RobustnessReport,
    get_scenario,
    scenario_names,
)

GOLDEN = Path(__file__).parent / "golden"

DIRTY_SCENARIOS = ("dirty-duplicates", "dirty-gaps", "dirty-splits")


def golden_payload(name):
    return json.loads((GOLDEN / name).read_text())


class TestRegistration:
    def test_dirty_scenarios_are_registered(self):
        for name in DIRTY_SCENARIOS:
            assert name in scenario_names()

    @pytest.mark.parametrize("name", DIRTY_SCENARIOS)
    def test_dirty_scenarios_are_file_backed_with_repairs(self, name):
        spec = get_scenario(name)
        assert spec.export_synthetic
        assert spec.data.kind == "file"
        assert isinstance(spec.corruption, CorruptionSpec)
        assert spec.repairs
        # The primary repair is on the DataSpec; the band set lists the
        # *other* admissible repairs.
        assert spec.data.repair not in spec.repairs

    def test_each_scenario_targets_its_taxonomy_slice(self):
        assert get_scenario("dirty-duplicates").corruption.kinds == (
            "duplicates",)
        assert get_scenario("dirty-gaps").corruption.kinds == ("gaps",)
        assert get_scenario("dirty-splits").corruption.kinds == (
            "splits", "spikes")


class TestGoldenAuditReport:
    def reference(self):
        return AuditReport(
            violations=(
                Violation("duplicates", "STOCK_0003", (20200107,),
                          {"count": 2, "conflict": True}),
                Violation("gaps", "STOCK_0011", (20200114, 20200115)),
                Violation("stale", "STOCK_0020",
                          (20200120, 20200121, 20200122, 20200123),
                          {"run": 4}),
                Violation("splits", "STOCK_0027", (20200204,),
                          {"ratio": 2.01, "factor": 2.0}),
                Violation("spikes", "STOCK_0033", (20200217,),
                          {"ratio": 3.0}),
            ),
            source="tests/scenarios/golden",
        )

    def test_schema_matches_golden_file(self):
        assert self.reference().to_json() == golden_payload(
            "audit_report.json")

    def test_golden_file_round_trips(self):
        payload = golden_payload("audit_report.json")
        report = AuditReport.from_json(payload)
        assert report.to_json() == payload
        assert report.keys() == self.reference().keys()
        assert report.version == AUDIT_REPORT_VERSION

    def test_version_mismatch_is_rejected(self):
        payload = golden_payload("audit_report.json")
        payload["version"] = AUDIT_REPORT_VERSION + 1
        with pytest.raises(DataError, match="version"):
            AuditReport.from_json(payload)


class TestGoldenRobustnessReport:
    def reference(self):
        return RobustnessReport(
            scenario="dirty-duplicates",
            repairs=("keep-last", "keep-first"),
            bands=(
                AlphaBand(
                    name="alpha_AE_D_0",
                    bands={"ic": {"min": 0.05, "mean": 0.055, "max": 0.06},
                           "sharpe": {"min": 1.1, "mean": 1.2, "max": 1.3}},
                    per_repair={
                        "keep-last": {"ic": 0.06, "sharpe": 1.3,
                                      "parity": True},
                        "keep-first": {"ic": 0.05, "sharpe": 1.1,
                                       "parity": True},
                    },
                    contingent=False,
                ),
                AlphaBand(
                    name="alpha_AE_NN_1",
                    bands={"ic": {"min": 0.01, "mean": 0.02, "max": 0.03},
                           "sharpe": {"min": 0.4, "mean": 0.5, "max": 0.6}},
                    per_repair={
                        "keep-last": {"ic": 0.01, "sharpe": 0.4,
                                      "parity": True},
                        "keep-first": {"ic": 0.03, "sharpe": 0.6,
                                       "parity": True},
                    },
                    contingent=True,
                ),
            ),
            certain_ranking=False,
            parity=True,
            audit_counts={"duplicates": 2},
        )

    def test_schema_matches_golden_file(self):
        assert self.reference().to_json() == golden_payload(
            "robustness_report.json")

    def test_golden_file_round_trips(self):
        payload = golden_payload("robustness_report.json")
        report = RobustnessReport.from_json(payload)
        assert report.to_json() == payload
        assert report.version == ROBUSTNESS_REPORT_VERSION
        assert report.repairs == ("keep-last", "keep-first")

    def test_version_mismatch_is_rejected(self):
        payload = golden_payload("robustness_report.json")
        payload["version"] = ROBUSTNESS_REPORT_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            RobustnessReport.from_json(payload)

    def test_band_lookup(self):
        report = self.reference()
        assert report.band_for("alpha_AE_NN_1").contingent
        with pytest.raises(ConfigurationError, match="no robustness band"):
            report.band_for("alpha_AE_R_9")

    def test_render_carries_the_verdicts(self):
        rendered = self.reference().render()
        assert "CONTINGENT" in rendered  # the fleet ranking flips
        assert "parity: ok" in rendered
        assert "alpha_AE_D_0" in rendered


class TestDirtyScenarioCli:
    def test_dirty_duplicates_output_round_trip(self, tmp_path, capsys):
        data_dir = tmp_path / "data"
        code = main([
            "scenario", "dirty-duplicates", "--scale", "smoke",
            "--top-k", "1", "--candidates", "25",
            "--data-dir", str(data_dir),
            "--output", str(tmp_path / "results"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "robustness across repairs" in out

        saved = load_result(
            tmp_path / "results" / "scenario-dirty-duplicates.json")
        assert saved.metadata["parity"] is True
        assert saved.metadata["audit"] == {"duplicates": 2}
        robustness = RobustnessReport.from_json(saved.metadata["robustness"])
        assert robustness.repairs == ("keep-last", "keep-first")
        assert robustness.parity
        for band in robustness.bands:
            assert set(band.bands) == {"ic", "sharpe"}
            assert set(band.per_repair) == {"keep-last", "keep-first"}
            for metric in ("ic", "sharpe"):
                spread = band.bands[metric]
                assert spread["min"] <= spread["mean"] <= spread["max"]

        # The injected ground truth is persisted next to the exported data
        # and matches what the saved audit counted.
        truth = load_audit_report(
            data_dir / "dirty-duplicates-smoke" / "corruption.json")
        assert truth.counts() == saved.metadata["audit"]

    def test_unknown_repair_override_is_a_usage_error(self, capsys):
        code = main(["scenario", "dirty-duplicates", "--repair", "nope"])
        assert code == 2
        assert "unknown repair policy" in capsys.readouterr().err
