"""End-to-end scenario runs (mine → compile → serve) and the scenario CLI."""

import json

import pytest

from repro.cli import main
from repro.experiments import load_result
from repro.scenarios import list_scenarios, run_scenario

#: Trims that keep an end-to-end smoke run to well under a second per
#: scenario while exercising the full mine → compile → serve pipeline.
TINY = {"serve_top_k": 1, "max_candidates": 25, "population_size": 10}


class TestRunScenario:
    def test_baseline_end_to_end(self, tmp_path):
        result = run_scenario("baseline", scale="smoke", data_dir=tmp_path,
                              overrides=TINY)
        assert result.experiment == "scenario-baseline"
        assert result.metadata["parity"] is True
        assert result.metadata["scenario"] == "baseline"
        assert result.rows and "sharpe" in result.rows[0]
        json.dumps(result.to_dict())  # JSON-serialisable end to end

    @pytest.mark.parametrize(
        "name", [spec.name for spec in list_scenarios() if spec.name != "baseline"]
    )
    def test_every_scenario_completes_with_parity(self, name, tmp_path):
        """Acceptance gate: each named scenario completes mine→compile→serve."""
        result = run_scenario(name, scale="smoke", data_dir=tmp_path,
                              overrides=TINY)
        assert result.metadata["parity"] is True
        assert result.metadata["taskset"]["num_samples"] >= 3
        assert result.rows

    def test_unknown_override_names_the_scenario_config(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="baseline-smoke"):
            run_scenario("baseline", scale="smoke", data_dir=tmp_path,
                         overrides={"serve_topk": 1})

    def test_rendered_report_names_backend_and_taskset(self, tmp_path):
        result = run_scenario("baseline", scale="smoke", data_dir=tmp_path,
                              overrides=TINY)
        assert "backend=" in result.rendered
        assert "taskset=" in result.rendered
        assert "parity" in result.rendered


class TestScenarioCli:
    def test_list(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("baseline", "weekly", "file-backed", "high-vol"):
            assert name in out

    def test_no_name_is_usage_error(self, capsys):
        assert main(["scenario"]) == 2
        assert "--list" in capsys.readouterr().err

    def test_unknown_scenario_is_usage_error(self, capsys):
        assert main(["scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_end_to_end_with_output(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO_DATA", str(tmp_path / "data"))
        code = main([
            "scenario", "baseline", "--scale", "smoke",
            "--top-k", "1", "--candidates", "25",
            "--output", str(tmp_path / "results"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario 'baseline'" in out
        saved = load_result(tmp_path / "results" / "scenario-baseline.json")
        assert saved.metadata["parity"] is True
        assert saved.metadata["scale"] == "smoke"

    def test_data_dir_flag_controls_export_location(self, tmp_path, capsys):
        code = main([
            "scenario", "file-backed", "--scale", "smoke",
            "--top-k", "1", "--candidates", "25",
            "--data-dir", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "file-backed-smoke" / "manifest.json").exists()
