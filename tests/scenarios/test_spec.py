"""Tests for scenario specs, materialisation and the registry."""

import dataclasses

import pytest

from repro.data import DataSpec
from repro.errors import ConfigurationError
from repro.experiments import SMOKE, make_taskset
from repro.scenarios import (
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from repro.scenarios.registry import _SCENARIOS


class TestRegistry:
    def test_shipped_suite_is_registered(self):
        assert {
            "baseline", "weekly", "file-backed", "high-vol", "sparse-relations"
        } <= set(scenario_names())

    def test_get_unknown_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="baseline"):
            get_scenario("nope")

    def test_list_matches_names(self):
        assert [spec.name for spec in list_scenarios()] == scenario_names()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario(ScenarioSpec(name="baseline", description="dup"))

    def test_custom_registration(self):
        spec = register_scenario(ScenarioSpec(name="test-tmp", description="x"))
        try:
            assert get_scenario("test-tmp") is spec
        finally:
            _SCENARIOS.pop("test-tmp")


class TestSpecValidation:
    def test_needs_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            ScenarioSpec(name="", description="x")

    def test_export_requires_file_kind(self):
        with pytest.raises(ConfigurationError, match="kind='file'"):
            ScenarioSpec(name="x", description="x", export_synthetic=True)

    def test_unknown_scale(self):
        with pytest.raises(ConfigurationError, match="scale"):
            get_scenario("baseline").experiment_config("warehouse")

    def test_unknown_config_field_names_the_scenario(self):
        """The satellite fix: rebuild errors say which scenario broke."""
        spec = ScenarioSpec(
            name="broken-config", description="x",
            config_overrides=(("num_stokcs", 10),),
        )
        with pytest.raises(ConfigurationError, match="broken-config"):
            spec.experiment_config("smoke")

    def test_unknown_market_field_names_the_scenario(self):
        spec = ScenarioSpec(
            name="broken-market", description="x",
            market_overrides=(("market_volatility", 0.5),),
        )
        with pytest.raises(ConfigurationError, match="broken-market"):
            spec.experiment_config("smoke")

    def test_reserved_override_names_the_scenario(self):
        """Colliding with spec-owned fields must not escape as TypeError."""
        spec = ScenarioSpec(
            name="reserved", description="x",
            config_overrides=(("name", "boom"),),
        )
        with pytest.raises(ConfigurationError, match="reserved"):
            spec.experiment_config("smoke")

    def test_structural_market_override_rejected(self):
        spec = ScenarioSpec(
            name="structural", description="x",
            market_overrides=(("num_stocks", 10),),
        )
        with pytest.raises(ConfigurationError, match="ExperimentConfig field"):
            spec.experiment_config("smoke")


class TestMaterialisation:
    def test_baseline_smoke_is_bitwise_the_smoke_taskset(self):
        """Acceptance gate: the default scenario is the pre-refactor path."""
        config = get_scenario("baseline").experiment_config("smoke")
        left = make_taskset(config, use_cache=False)
        right = make_taskset(SMOKE, use_cache=False)
        assert left.features.tobytes() == right.features.tobytes()
        assert left.labels.tobytes() == right.labels.tobytes()

    def test_config_name_embeds_scenario_and_scale(self):
        config = get_scenario("high-vol").experiment_config("smoke")
        assert config.name == "high-vol-smoke"

    def test_regime_overrides_reach_market_config(self):
        config = get_scenario("high-vol").experiment_config("smoke")
        market = config.market_config()
        assert market.market_vol == pytest.approx(0.016)
        assert market.num_stocks == 60

    def test_sparse_relations_regime(self):
        config = get_scenario("sparse-relations").experiment_config("smoke")
        market = config.market_config()
        assert market.num_sectors == 2
        assert market.relation_spillover_strength == 0.0

    def test_weekly_scenario_builds_resampled_taskset(self):
        config = get_scenario("weekly").experiment_config("smoke")
        assert config.data.frequency == "weekly"
        taskset = make_taskset(config)
        # 420 daily bars -> 84 weekly bars -> far fewer sample days than
        # the daily smoke scale's 216.
        assert taskset.num_samples < 100

    def test_file_backed_exports_and_reuses(self, tmp_path):
        spec = get_scenario("file-backed")
        config = spec.experiment_config("smoke", data_dir=tmp_path)
        directory = tmp_path / "file-backed-smoke"
        assert (directory / "manifest.json").exists()
        assert sorted(directory.glob("SYN*.csv"))
        assert config.data.kind == "file"
        stamp = (directory / "SYN0000.csv").stat().st_mtime_ns
        # Second materialisation must reuse the export, not rewrite it.
        spec.experiment_config("smoke", data_dir=tmp_path)
        assert (directory / "SYN0000.csv").stat().st_mtime_ns == stamp

    def test_partially_deleted_export_is_rebuilt(self, tmp_path):
        """A matching manifest over missing CSVs must re-export, not serve
        a silently shrunken universe."""
        spec = get_scenario("file-backed")
        spec.experiment_config("smoke", data_dir=tmp_path)
        directory = tmp_path / "file-backed-smoke"
        total = len(list(directory.glob("SYN*.csv")))
        for victim in sorted(directory.glob("SYN*.csv"))[: total // 2]:
            victim.unlink()
        config = spec.experiment_config("smoke", data_dir=tmp_path)
        assert len(list(directory.glob("SYN*.csv"))) == total
        assert config.data_backend().load_panel().num_stocks == total

    def test_reexport_removes_stale_csvs(self, tmp_path):
        """Shrinking a scenario must not leave the old generation's CSVs
        behind for the FileBackend glob to pick up."""
        big = ScenarioSpec(
            name="resize", description="x", data=DataSpec(kind="file"),
            export_synthetic=True, smoke_overrides=(("num_stocks", 40),),
        )
        big.experiment_config("smoke", data_dir=tmp_path)
        directory = tmp_path / "resize-smoke"
        assert len(list(directory.glob("SYN*.csv"))) == 40
        small = ScenarioSpec(
            name="resize", description="x", data=DataSpec(kind="file"),
            export_synthetic=True, smoke_overrides=(("num_stocks", 30),),
        )
        config = small.experiment_config("smoke", data_dir=tmp_path)
        assert len(list(directory.glob("SYN*.csv"))) == 30
        assert config.data_backend().load_panel().num_stocks == 30

    def test_file_backed_smoke_taskset_matches_baseline(self, tmp_path):
        """CSV round trip preserves the panel, so tasks are bitwise equal."""
        config = get_scenario("file-backed").experiment_config("smoke", data_dir=tmp_path)
        left = make_taskset(config, use_cache=False)
        right = make_taskset(SMOKE, use_cache=False)
        assert left.features.tobytes() == right.features.tobytes()
        assert left.labels.tobytes() == right.labels.tobytes()

    def test_every_shipped_scenario_materialises_at_both_scales(self, tmp_path):
        for spec in list_scenarios():
            for scale in ("smoke", "laptop"):
                config = spec.experiment_config(scale, data_dir=tmp_path)
                assert config.name == f"{spec.name}-{scale}"
                config.data_backend()  # resolvable backend

    def test_spec_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            get_scenario("baseline").name = "other"
