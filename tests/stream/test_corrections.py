"""Late point corrections through the serving stack: ``correct_bar`` et al.

The serving-layer face of bounded delta-replay: a correction to an
already-served bar replays only the invalidated suffix, bitwise-identical
to a full offline recompute over the corrected history — across fleets,
stacked groups, suspend/resume round trips through serialized state, and
the driver/CLI/scenario surfaces that inject corrections.
"""

import argparse
import json

import numpy as np
import pytest

from repro.cli import parse_corrections
from repro.core import AlphaEvaluator, Dimensions, get_initialization
from repro.data import (
    CorruptionSpec,
    FileBackend,
    MarketConfig,
    Split,
    SyntheticMarket,
    build_taskset,
    export_panel_csv,
    inject_corruption,
)
from repro.errors import StreamError
from repro.obs import TELEMETRY, telemetry_session
from repro.scenarios import get_scenario, scenario_names
from repro.stream import (
    AlphaServer,
    BarCorrection,
    CorrectionRecord,
    OnlineBacktestDriver,
    load_state,
    save_state,
)
from repro.stream.server import SERVER_STATE_VERSION

SERVE_DAYS = 14


@pytest.fixture()
def fleet(dims):
    return [
        get_initialization("D", dims, seed=3),
        get_initialization("NN", dims, seed=3),
    ]


def make_server(taskset, programs, warm=True, seed=0):
    server = AlphaServer(taskset, seed=seed, max_train_steps=40)
    for index, program in enumerate(programs):
        server.register(program, name=f"alpha_{index}")
    if warm:
        server.warm_start()
    return server


def serve_days(server, features, labels, start, stop):
    served = []
    for day in range(start, stop):
        served.append(server.on_bar(features[day]))
        server.reveal(labels[day])
    return served


def valid_history(taskset):
    return (taskset.split_features("valid"), taskset.split_labels("valid"))


class TestCorrectBarGuards:
    def test_cold_server_raises(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet, warm=False)
        with pytest.raises(StreamError, match="warm"):
            server.correct_bar(0, labels=np.zeros(small_taskset.num_tasks))

    def test_empty_correction_raises(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet)
        features, labels = valid_history(small_taskset)
        serve_days(server, features, labels, 0, 2)
        with pytest.raises(StreamError, match="features or labels"):
            server.correct_bar(0)

    def test_unserved_day_raises(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet)
        features, labels = valid_history(small_taskset)
        serve_days(server, features, labels, 0, 2)
        with pytest.raises(StreamError, match="2 days served"):
            server.correct_bar(2, labels=labels[0])

    def test_pending_label_raises(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet)
        features, labels = valid_history(small_taskset)
        serve_days(server, features, labels, 0, 2)
        server.on_bar(features[2])
        with pytest.raises(StreamError, match="incomplete"):
            server.correct_bar(0, labels=labels[0])

    def test_bad_shapes_raise(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet)
        features, labels = valid_history(small_taskset)
        serve_days(server, features, labels, 0, 2)
        with pytest.raises(StreamError, match="corrected features"):
            server.correct_bar(0, features=features[0][:, :, :-1])
        with pytest.raises(StreamError, match="corrected labels"):
            server.correct_bar(0, labels=labels[0][:-1])


class TestCorrectBarParity:
    def corrected_reference(self, small_taskset, server, features, labels):
        """Offline evaluator over the served (already-corrected) history."""
        import dataclasses

        full_features = np.array(small_taskset.features, copy=True)
        full_labels = np.array(small_taskset.labels, copy=True)
        start = small_taskset.split.train
        full_features[start:start + SERVE_DAYS] = features[:SERVE_DAYS]
        full_labels[start:start + SERVE_DAYS] = labels[:SERVE_DAYS]
        patched = dataclasses.replace(
            small_taskset, features=full_features, labels=full_labels
        )
        reference = AlphaEvaluator(patched, seed=0, max_train_steps=40)
        reference._base_seed = server.base_seed
        return reference

    def test_correct_bar_matches_offline_recompute(
        self, small_taskset, fleet
    ):
        server = make_server(small_taskset, fleet)
        features = np.array(valid_history(small_taskset)[0], copy=True)
        labels = np.array(valid_history(small_taskset)[1], copy=True)
        serve_days(server, features, labels, 0, SERVE_DAYS)

        day = SERVE_DAYS - 5
        features[day] = features[day] * 1.01
        labels[day] = labels[day] * 0.99
        suffix = server.correct_bar(
            day, features=features[day], labels=labels[day]
        )

        reference = self.corrected_reference(
            small_taskset, server, features, labels
        )
        for index, program in enumerate(fleet):
            batch = reference.run(program, splits=("valid",))["valid"]
            assert (suffix[f"alpha_{index}"].tobytes()
                    == batch[day:SERVE_DAYS].tobytes())
        # The corrected rolling state serves the future like the batch path.
        tail = serve_days(server, features, labels, SERVE_DAYS,
                          SERVE_DAYS + 3)
        for index, program in enumerate(fleet):
            batch = reference.run(program, splits=("valid",))["valid"]
            streamed = np.array(
                [bar[f"alpha_{index}"] for bar in tail]
            )
            assert streamed.tobytes() == \
                batch[SERVE_DAYS:SERVE_DAYS + 3].tobytes()

    def test_correction_records_and_day_count(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet)
        features, labels = valid_history(small_taskset)
        serve_days(server, features, labels, 0, SERVE_DAYS)
        server.correct_bar(4, labels=labels[4] * 2.0)
        assert server.days_served == SERVE_DAYS  # corrections do not re-serve
        record = server.corrections[-1]
        assert isinstance(record, CorrectionRecord)
        assert record.day == 4
        assert record.days_served == SERVE_DAYS
        assert not record.features_corrected
        assert record.labels_corrected
        assert 0 < record.replayed_days <= SERVE_DAYS

    def test_telemetry_counters(self, small_taskset, fleet):
        with telemetry_session():
            server = make_server(small_taskset, fleet)
            features, labels = valid_history(small_taskset)
            serve_days(server, features, labels, 0, SERVE_DAYS)
            server.correct_bar(SERVE_DAYS - 2, labels=labels[2])
            snapshot = TELEMETRY.snapshot()
        assert snapshot["stream.corrections"]["value"] == 1
        replayed = snapshot["stream.replay_days"]["value"]
        assert replayed == server.corrections[-1].replayed_days
        warm_days = len(server.evaluator.train_day_indices())
        assert snapshot["stream.replay_days_saved"]["value"] == (
            warm_days + SERVE_DAYS - replayed
        )


class TestDriverCorrections:
    def test_apply_corrections_verifies_bitwise(self, small_taskset, fleet):
        driver = OnlineBacktestDriver(
            small_taskset, fleet, seed=0, max_train_steps=40
        )
        server = driver.build_server()
        served = driver.stream(server)
        metadata = driver.apply_corrections(server, served, [
            BarCorrection(day=3, feature_scale=1.01),
            BarCorrection(day=40, label_scale=0.98),
            BarCorrection(day=10, feature_scale=0.99, label_scale=1.02),
        ])
        assert metadata["count"] == 3
        assert metadata["parity"] is True
        assert metadata["violations"] == []
        assert [record["day"] for record in metadata["records"]] == [3, 40, 10]
        assert all(record["replayed_days"] > 0
                   for record in metadata["records"])

    def test_out_of_range_correction_raises(self, small_taskset, fleet):
        driver = OnlineBacktestDriver(
            small_taskset, fleet, seed=0, max_train_steps=40
        )
        server = driver.build_server()
        served = driver.stream(server)
        with pytest.raises(StreamError, match="outside"):
            driver.apply_corrections(server, served, [
                BarCorrection(day=999, feature_scale=1.01),
            ])

    def test_bar_correction_must_change_something(self):
        with pytest.raises(StreamError, match="neither"):
            BarCorrection(day=3)


class TestRepairedPanelCorrections:
    """Repairs composed with delta-replay: a dirty directory loaded under
    the ``robust`` policy, then corrected mid-serve, must stay bitwise
    identical to a fresh offline evaluator over the repaired-then-patched
    history — the repair layer cannot perturb the correction contract."""

    @pytest.fixture(scope="class")
    def repaired_taskset(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("dirty-serve") / "panel"
        panel = SyntheticMarket(
            MarketConfig(num_stocks=16, num_days=220), seed=31
        ).generate()
        export_panel_csv(panel, directory)
        inject_corruption(
            directory, CorruptionSpec(events=1, seed=17),
            exclude=("sectors.txt",),
        )
        repaired = FileBackend(
            directory, sector_map=directory / "sectors.txt", repair="robust"
        ).load_panel()
        return build_taskset(
            repaired, split=Split(train=110, valid=30, test=30)
        )

    @pytest.fixture(scope="class")
    def repaired_fleet(self, repaired_taskset):
        dims = Dimensions(
            repaired_taskset.num_features, repaired_taskset.window
        )
        return [
            get_initialization("D", dims, seed=3),
            get_initialization("NN", dims, seed=3),
        ]

    def test_apply_corrections_stays_bitwise(
        self, repaired_taskset, repaired_fleet
    ):
        driver = OnlineBacktestDriver(
            repaired_taskset, repaired_fleet, seed=0, max_train_steps=40
        )
        server = driver.build_server()
        served = driver.stream(server)
        metadata = driver.apply_corrections(server, served, [
            BarCorrection(day=3, feature_scale=1.01),
            BarCorrection(day=10, feature_scale=0.99, label_scale=1.02),
        ])
        assert metadata["count"] == 2
        assert metadata["parity"] is True
        assert metadata["violations"] == []

    def test_correct_bar_matches_offline_recompute(
        self, repaired_taskset, repaired_fleet
    ):
        import dataclasses

        server = make_server(repaired_taskset, repaired_fleet)
        features = np.array(
            repaired_taskset.split_features("valid"), copy=True
        )
        labels = np.array(repaired_taskset.split_labels("valid"), copy=True)
        serve_days(server, features, labels, 0, SERVE_DAYS)

        day = SERVE_DAYS - 5
        features[day] = features[day] * 1.01
        labels[day] = labels[day] * 0.99
        suffix = server.correct_bar(
            day, features=features[day], labels=labels[day]
        )

        full_features = np.array(repaired_taskset.features, copy=True)
        full_labels = np.array(repaired_taskset.labels, copy=True)
        start = repaired_taskset.split.train
        full_features[start:start + SERVE_DAYS] = features[:SERVE_DAYS]
        full_labels[start:start + SERVE_DAYS] = labels[:SERVE_DAYS]
        patched = dataclasses.replace(
            repaired_taskset, features=full_features, labels=full_labels
        )
        reference = AlphaEvaluator(patched, seed=0, max_train_steps=40)
        reference._base_seed = server.base_seed
        for index, program in enumerate(repaired_fleet):
            batch = reference.run(program, splits=("valid",))["valid"]
            assert (suffix[f"alpha_{index}"].tobytes()
                    == batch[day:SERVE_DAYS].tobytes())


class TestSuspendResumeCorrections:
    def test_correct_after_resume_matches_live_server(
        self, small_taskset, fleet, tmp_path
    ):
        features, labels = valid_history(small_taskset)
        live = make_server(small_taskset, fleet)
        serve_days(live, features, labels, 0, SERVE_DAYS)
        live.correct_bar(6, labels=labels[6] * 1.05)

        state = live.suspend()
        assert state.version == SERVER_STATE_VERSION
        assert len(state.corrections) == 1
        assert state.history is not None
        assert state.history[0].shape[0] == SERVE_DAYS
        assert state.replay is not None

        path = tmp_path / "server.state"
        save_state(path, state)
        resumed = make_server(small_taskset, fleet, warm=False)
        resumed.resume(load_state(path))
        assert [record.day for record in resumed.corrections] == [6]

        # A correction reaching *before* the suspend point must behave
        # identically on the resumed and the never-suspended server.
        day = SERVE_DAYS - 4
        corrected = np.array(features, copy=True)
        corrected[day] = corrected[day] * 1.01
        from_live = live.correct_bar(day, features=corrected[day])
        from_resumed = resumed.correct_bar(day, features=corrected[day])
        assert from_live.keys() == from_resumed.keys()
        for name in from_live:
            assert from_live[name].tobytes() == from_resumed[name].tobytes()
        tail_live = serve_days(live, corrected, labels,
                               SERVE_DAYS, SERVE_DAYS + 3)
        tail_resumed = serve_days(resumed, corrected, labels,
                                  SERVE_DAYS, SERVE_DAYS + 3)
        for bar_live, bar_resumed in zip(tail_live, tail_resumed):
            for name in bar_live:
                assert bar_live[name].tobytes() == bar_resumed[name].tobytes()

    def test_resume_of_pre_history_state_rejects_corrections(
        self, small_taskset, fleet
    ):
        # A v2 state can legitimately carry no history (nothing served yet);
        # a server resumed from it must refuse corrections, not serve junk.
        import dataclasses

        features, labels = valid_history(small_taskset)
        live = make_server(small_taskset, fleet)
        serve_days(live, features, labels, 0, 4)
        state = dataclasses.replace(
            live.suspend(), history=None, replay=None
        )
        resumed = make_server(small_taskset, fleet, warm=False)
        resumed.resume(state)
        with pytest.raises(StreamError, match="incomplete"):
            resumed.correct_bar(1, labels=labels[1])


class TestCliCorrections:
    def namespace(self, correct=None, corrections=None):
        return argparse.Namespace(correct=correct, corrections=corrections)

    def test_absent_flags_mean_none(self):
        assert parse_corrections(self.namespace()) is None

    def test_correct_flags_become_feature_restatements(self):
        parsed = parse_corrections(self.namespace(correct=[3, 7]))
        assert [c.day for c in parsed] == [3, 7]
        assert all(c.feature_scale == 1.01 and c.label_scale is None
                   for c in parsed)

    def test_corrections_file_round_trip(self, tmp_path):
        path = tmp_path / "corrections.json"
        path.write_text(json.dumps([
            {"day": 2, "label_scale": 0.9},
            {"day": 5, "feature_scale": 1.02, "label_scale": 1.01},
        ]))
        parsed = parse_corrections(self.namespace(corrections=str(path)))
        assert [(c.day, c.feature_scale, c.label_scale) for c in parsed] == [
            (2, None, 0.9), (5, 1.02, 1.01),
        ]

    def test_corrections_file_validation(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(StreamError, match="no such corrections file"):
            parse_corrections(self.namespace(corrections=str(missing)))

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(StreamError, match="not valid JSON"):
            parse_corrections(self.namespace(corrections=str(bad)))

        bad.write_text(json.dumps({"day": 1}))
        with pytest.raises(StreamError, match="JSON\\s+list"):
            parse_corrections(self.namespace(corrections=str(bad)))

        bad.write_text(json.dumps([{"feature_scale": 1.0}]))
        with pytest.raises(StreamError, match='"day" key'):
            parse_corrections(self.namespace(corrections=str(bad)))

        bad.write_text(json.dumps([{"day": 1, "scale": 2.0}]))
        with pytest.raises(StreamError, match="unknown keys"):
            parse_corrections(self.namespace(corrections=str(bad)))


class TestCorrectedTickScenario:
    def test_scenario_is_registered_with_corrections(self):
        assert "corrected-tick" in scenario_names()
        spec = get_scenario("corrected-tick")
        assert len(spec.corrections) == 3
        assert all(isinstance(c, BarCorrection) for c in spec.corrections)
        days = [c.day for c in spec.corrections]
        assert days != sorted(days)  # exercises out-of-order replay

    def test_other_scenarios_carry_no_corrections(self):
        assert get_scenario("baseline").corrections == ()
