"""Tests for the online backtest driver and the ``repro serve`` plumbing."""

import numpy as np
import pytest

from repro.backtest.engine import BacktestEngine
from repro.core import AlphaEvaluator, get_initialization
from repro.errors import StreamError
from repro.experiments import SMOKE
from repro.stream import OnlineBacktestDriver, run_serve


@pytest.fixture()
def driver(small_taskset, dims):
    programs = [
        get_initialization("D", dims, seed=3),
        get_initialization("NN", dims, seed=3),
    ]
    return OnlineBacktestDriver(
        small_taskset, programs, names=["alpha_D", "alpha_NN"],
        seed=0, max_train_steps=40, long_k=5, short_k=5,
    )


class TestDriver:
    def test_report_has_parity_and_metrics(self, driver):
        report = driver.run()
        assert report.parity
        assert [row.name for row in report.rows] == ["alpha_D", "alpha_NN"]
        for row in report.rows:
            assert np.isfinite(row.sharpe)
            assert np.isfinite(row.ic)
        assert report.stats["days_served"] == (
            driver.taskset.split.valid + driver.taskset.split.test
        )
        assert report.elapsed_seconds > 0

    def test_metrics_match_offline_backtest(self, driver, small_taskset):
        report = driver.run()
        offline = AlphaEvaluator(small_taskset, seed=0, max_train_steps=40)
        engine = BacktestEngine(small_taskset, long_k=5, short_k=5)
        for row, program in zip(report.rows, driver.programs):
            batch = offline.run(program, splits=("valid", "test"))
            expected = engine.evaluate(batch["test"], split="test")
            assert row.sharpe == expected.sharpe
            assert row.ic == expected.ic

    def test_streamed_predictions_recorded_per_split(self, driver):
        report = driver.run()
        taskset = driver.taskset
        for name in ("alpha_D", "alpha_NN"):
            assert report.predictions[name]["valid"].shape == (
                taskset.split.valid, taskset.num_tasks
            )
            assert report.predictions[name]["test"].shape == (
                taskset.split.test, taskset.num_tasks
            )

    def test_render_mentions_every_alpha_and_parity(self, driver):
        rendered = driver.run().render()
        assert "alpha_D" in rendered
        assert "alpha_NN" in rendered
        assert "bitwise identical" in rendered
        assert "bar latency" in rendered

    def test_verify_reuses_a_streamed_server(self, driver):
        """The benchmark path: one serve pass, then verify without re-serving."""
        server = driver.build_server()
        served = driver.stream(server)
        days_before = server.days_served
        report = driver.verify(server, served)
        assert report.parity
        assert server.days_served == days_before  # nothing was re-streamed
        assert report.stats["days_served"] == days_before

    def test_rejects_empty_fleet(self, small_taskset):
        with pytest.raises(StreamError, match="no programs"):
            OnlineBacktestDriver(small_taskset, [])

    def test_rejects_mismatched_names(self, small_taskset, dims):
        with pytest.raises(StreamError, match="names for"):
            OnlineBacktestDriver(
                small_taskset,
                [get_initialization("D", dims, seed=3)],
                names=["a", "b"],
            )


class TestRunServe:
    def test_serves_given_programs_without_mining(self, dims):
        config = SMOKE.scaled(serve_top_k=2)
        programs = [
            get_initialization("D", dims, seed=3),
            get_initialization("NN", dims, seed=3),
        ]
        report = run_serve(config, programs=programs)
        assert report.parity
        assert len(report.rows) == 2
        assert report.metadata["scale"] == "smoke"
        assert report.metadata["serve_top_k"] == 2

    def test_mines_a_fleet_when_no_programs_given(self):
        config = SMOKE.scaled(serve_top_k=1, max_candidates=30, num_stocks=40)
        report = run_serve(config)
        assert report.parity
        assert len(report.rows) == 1
        assert report.rows[0].name == "alpha_AE_D_0"
