"""Incremental-vs-batch parity for day-at-a-time compiled execution.

The hard contract of :mod:`repro.stream`: fuzzed programs stepped one day at
a time through :class:`IncrementalAlpha` must match the batched
:class:`CompiledAlpha` output (via ``AlphaEvaluator.run``) bit for bit —
including across suspend/resume round-trips through serialized state files.
"""

import numpy as np
import pytest

from repro.core import AlphaEvaluator, get_initialization
from repro.errors import ExecutionError, StreamError
from repro.stream import IncrementalAlpha, load_state, save_state

SPLITS = ("valid", "test")


def fuzz_programs(dims, mutator, count=10):
    """A deterministic mixed bag of initialisation alphas and mutants."""
    bases = [get_initialization(code, dims, seed=3) for code in ("D", "NN", "R")]
    programs = []
    while len(programs) < count:
        program = bases[len(programs) % len(bases)]
        for _ in range(len(programs) % 4):
            program = mutator.mutate(program)
        programs.append(program)
    return programs


def batch_predictions(evaluator, program):
    return evaluator.run(program, splits=SPLITS)


def incremental_predictions(evaluator, program):
    """Stream the valid+test splits day by day through IncrementalAlpha."""
    taskset = evaluator.taskset
    alpha = IncrementalAlpha(program, evaluator.make_context())
    alpha.warm_start(
        taskset.split_features("train"),
        taskset.split_labels("train"),
        day_indices=evaluator.train_day_indices(),
        use_update=evaluator.use_update,
    )
    streamed = {}
    for split in SPLITS:
        features = taskset.split_features(split)
        labels = taskset.split_labels(split)
        predictions = np.zeros((features.shape[0], taskset.num_tasks))
        for day in range(features.shape[0]):
            predictions[day] = alpha.step(features[day])
            alpha.reveal(labels[day])
        streamed[split] = predictions
    return streamed


class TestIncrementalParity:
    def test_fuzzed_programs_match_batch_bitwise(self, evaluator, dims, mutator):
        for program in fuzz_programs(dims, mutator, count=10):
            batch = batch_predictions(evaluator, program)
            streamed = incremental_predictions(evaluator, program)
            for split in SPLITS:
                assert streamed[split].tobytes() == batch[split].tobytes(), (
                    f"{program.name} diverged on the {split} split"
                )

    def test_matches_reference_interpreter(self, small_taskset, dims, mutator):
        """Transitivity check: incremental == compiled batch == interpreter."""
        interpreter = AlphaEvaluator(
            small_taskset, seed=0, max_train_steps=40, compiled=False
        )
        compiled = AlphaEvaluator(small_taskset, seed=0, max_train_steps=40)
        program = fuzz_programs(dims, mutator, count=4)[-1]
        reference = interpreter.run(program, splits=SPLITS)
        streamed = incremental_predictions(compiled, program)
        for split in SPLITS:
            assert streamed[split].tobytes() == reference[split].tobytes()


class TestSuspendResume:
    def serve_with_restart(self, evaluator, program, restart_day, tmp_path):
        """Stream the valid split, suspending to disk at ``restart_day``."""
        taskset = evaluator.taskset
        features = taskset.split_features("valid")
        labels = taskset.split_labels("valid")

        alpha = IncrementalAlpha(program, evaluator.make_context())
        alpha.warm_start(
            taskset.split_features("train"),
            taskset.split_labels("train"),
            day_indices=evaluator.train_day_indices(),
        )
        predictions = np.zeros((features.shape[0], taskset.num_tasks))
        for day in range(restart_day):
            predictions[day] = alpha.step(features[day])
            alpha.reveal(labels[day])

        path = tmp_path / "alpha.state"
        save_state(str(path), alpha.suspend())
        resumed = IncrementalAlpha(program, evaluator.make_context())
        resumed.resume(load_state(str(path)), days_served=alpha.days_served)

        for day in range(restart_day, features.shape[0]):
            predictions[day] = resumed.step(features[day])
            resumed.reveal(labels[day])
        return predictions, resumed

    def test_roundtrip_matches_uninterrupted_run(self, evaluator, dims, mutator,
                                                 tmp_path):
        for index, program in enumerate(fuzz_programs(dims, mutator, count=5)):
            batch = batch_predictions(evaluator, program)
            restart_day = 1 + index * 5
            predictions, resumed = self.serve_with_restart(
                evaluator, program, restart_day, tmp_path
            )
            assert predictions.tobytes() == batch["valid"].tobytes()
            assert resumed.days_served == evaluator.taskset.split.valid

    def test_resume_restores_day_counter(self, evaluator, dims, tmp_path):
        program = get_initialization("D", dims, seed=3)
        _, resumed = self.serve_with_restart(evaluator, program, 7, tmp_path)
        assert resumed.is_warm

    def test_resume_rejects_other_program(self, evaluator, dims):
        program = get_initialization("D", dims, seed=3)
        other = get_initialization("NN", dims, seed=3)
        alpha = IncrementalAlpha(program, evaluator.make_context())
        alpha.warm_start(
            evaluator.taskset.split_features("train"),
            evaluator.taskset.split_labels("train"),
        )
        state = alpha.suspend()
        stranger = IncrementalAlpha(other, evaluator.make_context())
        with pytest.raises(ExecutionError, match="different compiled program"):
            stranger.resume(state)

    def test_resume_rejects_version_mismatch(self, evaluator, dims):
        from dataclasses import replace

        program = get_initialization("D", dims, seed=3)
        alpha = IncrementalAlpha(program, evaluator.make_context())
        alpha.warm_start(
            evaluator.taskset.split_features("train"),
            evaluator.taskset.split_labels("train"),
        )
        state = replace(alpha.suspend(), version=99)
        fresh = IncrementalAlpha(program, evaluator.make_context())
        with pytest.raises(ExecutionError, match="version"):
            fresh.resume(state)

    def test_resume_rejects_other_seed(self, small_taskset, dims):
        program = get_initialization("D", dims, seed=3)
        one = AlphaEvaluator(small_taskset, seed=0, max_train_steps=40)
        two = AlphaEvaluator(small_taskset, seed=1, max_train_steps=40)
        alpha = IncrementalAlpha(program, one.make_context())
        alpha.warm_start(
            small_taskset.split_features("train"),
            small_taskset.split_labels("train"),
        )
        stranger = IncrementalAlpha(program, two.make_context())
        with pytest.raises(ExecutionError, match="base seed"):
            stranger.resume(alpha.suspend())


class TestProtocolErrors:
    def test_step_requires_warm_start(self, evaluator, dims):
        program = get_initialization("D", dims, seed=3)
        alpha = IncrementalAlpha(program, evaluator.make_context())
        features = evaluator.taskset.split_features("valid")
        with pytest.raises(StreamError, match="warm-started"):
            alpha.step(features[0])

    def test_step_without_reveal_rejected(self, evaluator, dims):
        program = get_initialization("D", dims, seed=3)
        alpha = IncrementalAlpha(program, evaluator.make_context())
        taskset = evaluator.taskset
        alpha.warm_start(
            taskset.split_features("train"), taskset.split_labels("train")
        )
        features = taskset.split_features("valid")
        alpha.step(features[0])
        with pytest.raises(StreamError, match="never revealed"):
            alpha.step(features[1])

    def test_reveal_without_step_rejected(self, evaluator, dims):
        program = get_initialization("D", dims, seed=3)
        alpha = IncrementalAlpha(program, evaluator.make_context())
        taskset = evaluator.taskset
        alpha.warm_start(
            taskset.split_features("train"), taskset.split_labels("train")
        )
        with pytest.raises(StreamError, match="no prediction"):
            alpha.reveal(taskset.split_labels("valid")[0])

    def test_double_warm_start_rejected(self, evaluator, dims):
        program = get_initialization("D", dims, seed=3)
        alpha = IncrementalAlpha(program, evaluator.make_context())
        taskset = evaluator.taskset
        alpha.warm_start(
            taskset.split_features("train"), taskset.split_labels("train")
        )
        with pytest.raises(StreamError, match="already warm"):
            alpha.warm_start(
                taskset.split_features("train"), taskset.split_labels("train")
            )

    def test_suspend_between_step_and_reveal_rejected(self, evaluator, dims):
        program = get_initialization("D", dims, seed=3)
        alpha = IncrementalAlpha(program, evaluator.make_context())
        taskset = evaluator.taskset
        alpha.warm_start(
            taskset.split_features("train"), taskset.split_labels("train")
        )
        alpha.step(taskset.split_features("valid")[0])
        with pytest.raises(StreamError, match="pending"):
            alpha.suspend()


class TestStateIO:
    def test_load_missing_state(self, tmp_path):
        with pytest.raises(StreamError, match="no stream state"):
            load_state(str(tmp_path / "missing.state"))

    def test_load_corrupt_state(self, tmp_path):
        path = tmp_path / "corrupt.state"
        path.write_bytes(b"not a pickle")
        with pytest.raises(StreamError, match="cannot read"):
            load_state(str(path))
