"""Tests for the multi-alpha batch server (:class:`AlphaServer`)."""

import numpy as np
import pytest

from repro.core import (
    AlphaEvaluator,
    AlphaProgram,
    INPUT_MATRIX,
    Operand,
    Operation,
    PREDICTION,
    get_initialization,
)
from repro.errors import StreamError
from repro.stream import AlphaServer, load_state, save_state


def op(name, inputs, output, params=None):
    return Operation.make(name, inputs, output, params)


def mirror_pair():
    """Two programs that differ only in commutative operand order."""
    s3, s4 = Operand.scalar(3), Operand.scalar(4)
    base = [
        op("get_scalar", (INPUT_MATRIX,), s3, {"row": 0, "col": 0}),
        op("get_scalar", (INPUT_MATRIX,), s4, {"row": 1, "col": 1}),
    ]
    left = AlphaProgram(
        predict=base + [op("s_add", (s3, s4), PREDICTION)], name="left"
    )
    right = AlphaProgram(
        predict=[base[0], base[1], op("s_add", (s4, s3), PREDICTION)],
        name="right",
    )
    return left, right


@pytest.fixture()
def fleet(dims):
    return [
        get_initialization("D", dims, seed=3),
        get_initialization("NN", dims, seed=3),
    ]


def make_server(taskset, programs, warm=True, seed=0, names=None):
    server = AlphaServer(taskset, seed=seed, max_train_steps=40)
    for index, program in enumerate(programs):
        server.register(
            program, name=names[index] if names else f"alpha_{index}"
        )
    if warm:
        server.warm_start()
    return server


class TestRegistration:
    def test_identical_program_shares_executor(self, small_taskset, dims):
        program = get_initialization("D", dims, seed=3)
        server = make_server(
            small_taskset, [program, program], warm=False,
            names=["first", "second"],
        )
        assert server.num_registered == 2
        assert server.num_unique == 1
        assert [r.deduplicated for r in server.registrations] == [False, True]

    def test_commutative_mirror_shares_executor(self, small_taskset):
        left, right = mirror_pair()
        server = make_server(small_taskset, [left, right], warm=False)
        assert server.num_unique == 1
        assert server.registrations[1].deduplicated

    def test_distinct_programs_get_distinct_executors(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet, warm=False)
        assert server.num_unique == 2

    def test_duplicate_name_rejected(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet[:1], warm=False, names=["a"])
        with pytest.raises(StreamError, match="already registered"):
            server.register(fleet[1], name="a")

    def test_register_after_warm_start_rejected(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet[:1])
        with pytest.raises(StreamError, match="warm server"):
            server.register(fleet[1], name="late")

    def test_redundant_program_is_flagged(self, small_taskset):
        constant = AlphaProgram(
            predict=[op("s_const", (), PREDICTION, {"constant": 1.5})],
            name="constant",
        )
        registration = make_server(
            small_taskset, [constant], warm=False
        ).registrations[0]
        assert registration.redundant

    def test_warm_start_requires_registrations(self, small_taskset):
        with pytest.raises(StreamError, match="no alphas registered"):
            AlphaServer(small_taskset).warm_start()


class TestServing:
    def test_on_bar_requires_warm_start(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet, warm=False)
        with pytest.raises(StreamError, match="warm-started"):
            server.on_bar(small_taskset.split_features("valid")[0])

    def test_fan_out_covers_every_name(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet + [fleet[0]])
        predictions = server.on_bar(small_taskset.split_features("valid")[0])
        assert set(predictions) == {"alpha_0", "alpha_1", "alpha_2"}
        # the deduplicated name references the representative's array
        assert predictions["alpha_2"] is predictions["alpha_0"]
        assert predictions["alpha_1"] is not predictions["alpha_0"]

    def test_matches_offline_evaluator_bitwise(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet)
        offline = AlphaEvaluator(small_taskset, seed=0, max_train_steps=40)
        num_tasks = small_taskset.num_tasks
        served = {name: [] for name in server.names}
        for split in ("valid", "test"):
            features = small_taskset.split_features(split)
            labels = small_taskset.split_labels(split)
            for day in range(features.shape[0]):
                predictions = server.on_bar(features[day])
                for name in server.names:
                    served[name].append(predictions[name])
                server.reveal(labels[day])
        for index, program in enumerate(fleet):
            batch = offline.run(program, splits=("valid", "test"))
            stacked = np.asarray(served[f"alpha_{index}"])
            expected = np.concatenate([batch["valid"], batch["test"]])
            assert stacked.shape == (expected.shape[0], num_tasks)
            assert stacked.tobytes() == expected.tobytes()

    def test_stats_track_fleet_and_latency(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet + [fleet[1]])
        features = small_taskset.split_features("valid")
        labels = small_taskset.split_labels("valid")
        for day in range(3):
            server.on_bar(features[day])
            server.reveal(labels[day])
        stats = server.stats()
        assert stats["registered_alphas"] == 3
        assert stats["unique_executors"] == 2
        assert stats["deduplicated_alphas"] == 1
        assert stats["days_served"] == 3
        assert stats["mean_bar_latency_ms"] > 0
        assert stats["alpha_days_per_second"] > 0


class TestSuspendResume:
    def stream_days(self, server, taskset, start, stop, sink=None):
        features = taskset.split_features("valid")
        labels = taskset.split_labels("valid")
        for day in range(start, stop):
            predictions = server.on_bar(features[day])
            if sink is not None:
                sink.append(predictions)
            server.reveal(labels[day])

    def test_roundtrip_through_state_file(self, small_taskset, fleet, tmp_path):
        reference = make_server(small_taskset, fleet)
        expected = []
        self.stream_days(reference, small_taskset, 0, 20, expected)

        first = make_server(small_taskset, fleet)
        self.stream_days(first, small_taskset, 0, 8)
        path = tmp_path / "fleet.state"
        save_state(str(path), first.suspend())

        resumed = make_server(small_taskset, fleet, warm=False)
        resumed.resume(load_state(str(path)))
        assert resumed.days_served == 8
        # the per-executor day counters follow the fleet counter
        assert all(
            executor.days_served == 8
            for executor in resumed._executors.values()
        )
        continued = []
        self.stream_days(resumed, small_taskset, 8, 20, continued)
        for offset, predictions in enumerate(continued):
            for name, values in predictions.items():
                assert values.tobytes() == expected[8 + offset][name].tobytes()

    def test_resume_rejects_other_fleet(self, small_taskset, fleet, tmp_path):
        server = make_server(small_taskset, fleet)
        state = server.suspend()
        other = make_server(small_taskset, fleet[:1], warm=False)
        with pytest.raises(StreamError, match="registration table"):
            other.resume(state)

    def test_resume_rejects_other_data(self, small_taskset, fleet):
        """Same shapes, same seed, different market data -> loud failure."""
        from repro.data import TaskSet

        state = make_server(small_taskset, fleet).suspend()
        perturbed = TaskSet(
            features=small_taskset.features,
            labels=small_taskset.labels + 1e-9,
            dates=small_taskset.dates,
            taxonomy=small_taskset.taxonomy,
            split=small_taskset.split,
            tickers=small_taskset.tickers,
        )
        other = make_server(perturbed, fleet, warm=False)
        with pytest.raises(StreamError, match="different task set"):
            other.resume(state)

    def test_resume_rejects_other_seed(self, small_taskset, fleet):
        state = make_server(small_taskset, fleet).suspend()
        other = make_server(small_taskset, fleet, warm=False, seed=1)
        with pytest.raises(StreamError, match="base seed"):
            other.resume(state)

    def test_resume_into_warm_server_rejected(self, small_taskset, fleet):
        state = make_server(small_taskset, fleet).suspend()
        warm = make_server(small_taskset, fleet)
        with pytest.raises(StreamError, match="already ran"):
            warm.resume(state)

    def test_suspend_requires_warm_server(self, small_taskset, fleet):
        server = make_server(small_taskset, fleet, warm=False)
        with pytest.raises(StreamError, match="never warmed"):
            server.suspend()


class TestFromBackend:
    """Servers warm-started straight from a data backend."""

    def test_from_backend_parity_with_taskset_server(self, fleet):
        from repro.data import MarketConfig, Split, SyntheticBackend

        backend = SyntheticBackend(
            MarketConfig(num_stocks=30, num_days=220), seed=123
        )
        split = Split(train=110, valid=30, test=30)
        server = AlphaServer.from_backend(
            backend, split=split, seed=0, max_train_steps=40
        )
        for index, program in enumerate(fleet):
            server.register(program, name=f"alpha_{index}")
        server.warm_start()

        reference = make_server(backend.build_taskset(split=split), fleet)
        features = server.taskset.split_features("valid")
        labels = server.taskset.split_labels("valid")
        for day in range(3):
            served = server.on_bar(features[day])
            expected = reference.on_bar(features[day])
            for name in served:
                assert served[name].tobytes() == expected[name].tobytes()
            server.reveal(labels[day])
            reference.reveal(labels[day])

    def test_from_backend_file_source(self, small_panel, tmp_path, fleet):
        from repro.data import FileBackend, Split, export_panel_csv

        export_panel_csv(small_panel, tmp_path)
        backend = FileBackend(tmp_path, sector_map=tmp_path / "sectors.txt")
        server = AlphaServer.from_backend(
            backend, split=Split(train=110, valid=30, test=30), seed=0,
            max_train_steps=40,
        )
        server.register(fleet[0], name="alpha_file")
        server.warm_start()
        prediction = server.on_bar(server.taskset.split_features("valid")[0])
        assert prediction["alpha_file"].shape == (server.taskset.num_tasks,)
