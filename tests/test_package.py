"""Package-level smoke tests: imports, version, public API surface."""

import repro


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_api_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        import repro.backtest
        import repro.baselines
        import repro.core
        import repro.data
        import repro.experiments

        for module in (repro.backtest, repro.baselines, repro.core, repro.data,
                       repro.experiments):
            assert module.__doc__

    def test_core_all_exports_exist(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_config_constants_match_paper(self):
        from repro import config

        assert config.NUM_FEATURES == 13
        assert config.WINDOW == 13
        assert config.POPULATION_SIZE == 100
        assert config.TOURNAMENT_SIZE == 10
        assert config.MUTATION_PROBABILITY == 0.9
        assert config.CORRELATION_CUTOFF == 0.15
        assert (config.MAX_SETUP_OPS, config.MAX_PREDICT_OPS, config.MAX_UPDATE_OPS) == (
            21, 21, 45)
        assert (config.NUM_SCALARS, config.NUM_VECTORS, config.NUM_MATRICES) == (10, 16, 4)
